//! The compression service: a bounded acceptor → worker architecture
//! over `std::net` + scoped threads.
//!
//! ```text
//!            accept()            bounded queue             workers
//!  clients ───────────▶ acceptor ─────────────▶ [conn conn] ─▶ pool job 0 (engine)
//!                        │  full? reject with Busy           ─▶ pool job 1 (engine)
//!                        ▼                                      …
//!                     metrics
//! ```
//!
//! The worker side runs on [`cuszp_parallel::WorkerPool::run_with_state`]:
//! each pool job is one worker loop owning a long-lived
//! [`PipelineEngine`], so every request a worker serves reuses the same
//! scratch arenas (the PR 3 engine contract, extended from
//! chunks-within-one-call to requests-within-one-process). Backpressure
//! is explicit — when the connection queue is full the acceptor answers
//! a typed `Busy` error frame instead of queueing unboundedly — and a
//! malformed frame is answered with a typed error and at worst a closed
//! connection, never a dead process. Shutdown is cooperative: the
//! `shutdown` op (or [`ServerHandle::shutdown`]) flips a flag, the
//! acceptor stops accepting, and workers drain queued + in-flight
//! connections until a drain deadline.

use crate::cache::SlabCache;
use crate::metrics::ServiceMetrics;
use crate::ring::Ring;
use crate::store::{ShardBackend, StoreBackendConfig};
use crate::wire::{
    fnv1a, read_frame, write_frame, ClusterIdentity, CompressRequest, DecompressMode,
    DecompressRequest, DecompressResponse, ErrorCode, ErrorResponse, GetRangeRequest,
    GetShardRequest, GetShardResponse, Op, PutShardRequest, RemoteInfo, ShardListResponse,
    WireError, FLAG_ERROR, FLAG_RESPONSE, MAX_FRAME_PAYLOAD, PUT_FLAG_REPAIR,
};
use cuszp_core::{
    is_chunked_archive, Archive, ChunkedArchive, Compressor, Config, CuszpError, Dims, Dtype,
    LosslessStage, PipelineEngine, PortableScanReport, Predictor, RangeSpec, ReconstructEngine,
    RecoveredField, Scalar,
};
use cuszp_parallel::{WorkerPool, DEFAULT_CHUNK_ELEMS};
use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often blocked workers and the acceptor re-check the shutdown
/// flag. Also the idle-poll granularity on open connections.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads (each owns one [`PipelineEngine`]).
    pub workers: usize,
    /// Connections allowed to wait in the queue; beyond this the
    /// acceptor answers `Busy`.
    pub queue_capacity: usize,
    /// A connection is closed after this long without a complete frame.
    pub read_timeout: Duration,
    /// Per-response write timeout.
    pub write_timeout: Duration,
    /// After shutdown begins, connected clients get this long to finish.
    pub drain_deadline: Duration,
    /// Frame payload cap for this server (≤ [`MAX_FRAME_PAYLOAD`]).
    pub max_frame_payload: usize,
    /// Byte budget for the hot-slab range cache; 0 disables caching.
    pub cache_bytes: usize,
    /// Backoff hint carried by `Busy` rejections (`retry_after_ms`).
    pub busy_retry_after: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 16,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            max_frame_payload: MAX_FRAME_PAYLOAD,
            cache_bytes: 64 << 20,
            busy_retry_after: Duration::from_millis(100),
        }
    }
}

/// Cluster membership for one node: its identity and the ring it
/// routes by. [`ServerConfig`] stays `Copy`-tunable; this rides
/// alongside it through [`Server::bind_cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's id. Must name a member of `ring`.
    pub node_id: u64,
    /// The topology this node serves and routes by.
    pub ring: Ring,
    /// Shard persistence: in-memory, or the durable log-structured
    /// store rooted at a data directory.
    pub backend: StoreBackendConfig,
}

/// Per-node cluster state: identity, topology, and the shard store.
#[derive(Debug)]
struct ClusterCtx {
    node_id: u64,
    ring: Ring,
    store: Mutex<Box<dyn ShardBackend>>,
}

/// State shared by the acceptor, the workers, and external handles.
#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    metrics: ServiceMetrics,
    shutdown: AtomicBool,
    /// Set when shutdown begins: the instant the drain window closes.
    drain_until: Mutex<Option<Instant>>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    /// Hot-slab cache for `get_range`. Locked only for lookup/insert;
    /// chunk decoding always happens outside the critical section.
    cache: Mutex<SlabCache>,
    /// `Some` when serving as a cluster node: shard ops route here.
    cluster: Option<ClusterCtx>,
}

impl Shared {
    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn begin_shutdown(&self) {
        let mut until = self.drain_until.lock().expect("drain lock poisoned");
        if until.is_none() {
            *until = Some(Instant::now() + self.config.drain_deadline);
        }
        drop(until);
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue_cv.notify_all();
    }

    fn drain_expired(&self) -> bool {
        self.drain_until
            .lock()
            .expect("drain lock poisoned")
            .is_some_and(|t| Instant::now() >= t)
    }

    /// The backoff hint to carry on shed requests. While draining, the
    /// hint is the remaining drain window (after which a restarted
    /// server could bind again); otherwise the configured busy backoff.
    fn retry_after_hint(&self) -> Duration {
        let drain_remaining = self
            .drain_until
            .lock()
            .expect("drain lock poisoned")
            .map(|t| t.saturating_duration_since(Instant::now()));
        match drain_remaining {
            Some(rem) => rem.max(self.config.busy_retry_after),
            None => self.config.busy_retry_after,
        }
    }
}

/// A cloneable control handle: shut the server down or sample its
/// metrics from outside the serve loop (e.g. a signal handler shim or a
/// test harness).
#[derive(Debug, Clone)]
pub struct ServerHandle(Arc<Shared>);

impl ServerHandle {
    /// Begins graceful shutdown: stop accepting, drain, return.
    pub fn shutdown(&self) {
        self.0.begin_shutdown();
    }

    /// True once shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.0.is_shutting_down()
    }

    /// Samples the live metrics.
    pub fn stats(&self) -> crate::metrics::StatsSnapshot {
        self.0.metrics.snapshot()
    }

    /// Stored shard slots on this node (0 when not clustered).
    pub fn shard_count(&self) -> usize {
        self.0
            .cluster
            .as_ref()
            .map(|c| c.store.lock().expect("store lock poisoned").len())
            .unwrap_or(0)
    }

    /// Wipes the node's shard store — the test hook for simulating a
    /// node that lost its disk and must be healed by scrub. (The
    /// durable backend deletes its segment files too.)
    pub fn clear_shards(&self) {
        if let Some(c) = &self.0.cluster {
            let _ = c.store.lock().expect("store lock poisoned").clear();
        }
    }

    /// The shard backend kind (`"memory"` / `"durable"`); `None` when
    /// not clustered.
    pub fn store_kind(&self) -> Option<&'static str> {
        self.0
            .cluster
            .as_ref()
            .map(|c| c.store.lock().expect("store lock poisoned").kind())
    }

    /// The durable backend's boot-recovery summary (`None` for the
    /// memory backend or when not clustered).
    pub fn store_recovery_summary(&self) -> Option<String> {
        self.0.cluster.as_ref().and_then(|c| {
            c.store
                .lock()
                .expect("store lock poisoned")
                .recovery_summary()
        })
    }
}

/// The compression service.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the service (use port 0 for an ephemeral port; read it
    /// back with [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        Server::bind_cluster(addr, config, None)
    }

    /// Binds the service as a cluster node: shard ops (`put`, `get`,
    /// `list_shards`) and the `ring` op are served, `health` carries
    /// the node id + ring epoch, and requests routed under a stale
    /// epoch or to a non-owner are answered `Redirect`/`NotMine`.
    pub fn bind_cluster(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        cluster: Option<ClusterConfig>,
    ) -> std::io::Result<Server> {
        let mut cluster_ctx = None;
        if let Some(c) = cluster {
            if c.ring.node(c.node_id).is_none() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("node id {} is not a member of the ring", c.node_id),
                ));
            }
            // Opening the durable backend replays its segments here, so
            // a node that binds has already re-verified every shard it
            // will serve (the boot scan is `list_shards`-equivalent).
            let store = c
                .backend
                .open()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            cluster_ctx = Some(ClusterCtx {
                node_id: c.node_id,
                ring: c.ring,
                store: Mutex::new(store),
            });
        }
        let listener = TcpListener::bind(addr)?;
        let config = ServerConfig {
            workers: config.workers.max(1),
            max_frame_payload: config.max_frame_payload.min(MAX_FRAME_PAYLOAD),
            ..config
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                metrics: ServiceMetrics::new(),
                shutdown: AtomicBool::new(false),
                drain_until: Mutex::new(None),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                cache: Mutex::new(SlabCache::new(config.cache_bytes)),
                cluster: cluster_ctx,
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle(self.shared.clone())
    }

    /// Runs the service until graceful shutdown completes. The acceptor
    /// runs on the calling thread's scope; request workers run as pool
    /// jobs, each owning one reusable [`PipelineEngine`].
    pub fn serve(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let shared = &self.shared;
        let listener = &self.listener;
        std::thread::scope(|s| {
            let acceptor = s.spawn(move || accept_loop(listener, shared));
            let pool = WorkerPool::new(shared.config.workers);
            pool.run_with_state(shared.config.workers, PipelineEngine::new, |_, engine| {
                worker_loop(shared, engine)
            });
            acceptor.join().expect("acceptor panicked")
        });
        Ok(())
    }
}

/// Accepts connections until shutdown, enqueueing each for a worker —
/// or rejecting with a typed `Busy` frame when the queue is at
/// capacity (the explicit-backpressure contract).
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.is_shutting_down() {
            // Wake any workers parked on an empty queue.
            shared.queue_cv.notify_all();
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.connections_total.incr();
                // Accepted sockets must block again regardless of what
                // they inherited from the nonblocking listener.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let mut queue = shared.queue.lock().expect("queue lock poisoned");
                if queue.len() >= shared.config.queue_capacity {
                    drop(queue);
                    shared.metrics.rejected_busy.incr();
                    reject_busy(stream, shared);
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.queue_cv.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL.min(Duration::from_millis(20)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Best-effort peek at the first frame header of a rejected connection
/// so the `Busy` answer can echo the request's id and op. Returns
/// `(op, req_id)` when a structurally valid header was already readable
/// within the (short) budget; pipelining clients then correlate the
/// rejection with the request that caused it.
fn peek_rejected_header(stream: &TcpStream, budget: Duration) -> Option<(u8, u64)> {
    use crate::wire::{FRAME_HEADER_BYTES, WIRE_MAGIC, WIRE_VERSION, WIRE_VERSION_MIN};
    stream.set_read_timeout(Some(budget)).ok()?;
    let mut header = [0u8; FRAME_HEADER_BYTES];
    // Peek (never consume): the client's frame stays intact on the
    // socket, and a header that doesn't fully arrive within the budget
    // just means we answer with id 0 as before.
    let deadline = Instant::now() + budget;
    loop {
        match stream.peek(&mut header) {
            Ok(got) if got >= FRAME_HEADER_BYTES => break,
            Ok(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            _ => return None,
        }
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != WIRE_MAGIC {
        return None;
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if !(WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version) {
        return None;
    }
    let req_id = u64::from_le_bytes(header[8..16].try_into().unwrap());
    Some((header[6], req_id))
}

/// Answers one `Busy` error frame and drops the connection. When the
/// client's first frame header is already readable, its request id and
/// op are echoed so pipelining clients can correlate the rejection;
/// id 0 only when nothing parsed.
fn reject_busy(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let (op, req_id) =
        peek_rejected_header(&stream, Duration::from_millis(50)).unwrap_or((Op::Ping as u8, 0));
    let busy = ErrorResponse::new(
        ErrorCode::Busy,
        format!(
            "request queue full ({} waiting); retry later",
            shared.config.queue_capacity
        ),
    )
    .with_retry_after(shared.retry_after_hint());
    let mut stream = stream;
    let _ = write_frame(
        &mut stream,
        op,
        FLAG_RESPONSE | FLAG_ERROR,
        req_id,
        &busy.encode(),
    );
}

/// One worker: pull connections off the queue and serve each until the
/// client closes (or timeouts/drain end it). Exits when shutdown has
/// begun and the queue is drained — or immediately once the drain
/// deadline passes.
fn worker_loop(shared: &Shared, engine: &mut PipelineEngine) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(c) = queue.pop_front() {
                    break Some(c);
                }
                if shared.is_shutting_down() {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, POLL_INTERVAL)
                    .expect("queue lock poisoned");
                queue = guard;
            }
        };
        match conn {
            Some(stream) => serve_connection(stream, shared, engine),
            None => return,
        }
        if shared.drain_expired() {
            return;
        }
    }
}

/// Serves every frame on one connection. A malformed frame gets a typed
/// error response and closes the connection; request-level failures get
/// typed error responses and the connection keeps serving.
fn serve_connection(mut stream: TcpStream, shared: &Shared, engine: &mut PipelineEngine) {
    let _active = shared.metrics.connection_guard();
    let _ = stream.set_nodelay(true);
    if stream
        .set_write_timeout(Some(shared.config.write_timeout))
        .is_err()
    {
        return;
    }
    let mut last_frame = Instant::now();
    loop {
        if shared.drain_expired() {
            return;
        }
        // Idle-poll via peek so the frame reader never consumes partial
        // headers on a timeout: wait for the first byte of a frame under
        // a short poll, then grant the full read timeout to the frame.
        if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
            return;
        }
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // clean close
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_frame.elapsed() >= shared.config.read_timeout {
                    return; // idle connection
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        if stream
            .set_read_timeout(Some(shared.config.read_timeout))
            .is_err()
        {
            return;
        }
        match read_frame(&mut stream, shared.config.max_frame_payload) {
            Ok(frame) => {
                last_frame = Instant::now();
                if !handle_frame(&mut stream, &frame, shared, engine) {
                    return;
                }
            }
            Err(WireError::Closed) => return,
            Err(WireError::Io(_)) => return, // timeout mid-frame or hard I/O error
            Err(wire_err) => {
                // Structurally bad frame: answer with a typed error,
                // then close — the stream cannot be resynchronized.
                shared.metrics.malformed_frames.incr();
                let code = match wire_err {
                    WireError::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
                    WireError::FrameTooLarge { .. } => ErrorCode::FrameTooLarge,
                    _ => ErrorCode::MalformedFrame,
                };
                let resp = ErrorResponse::new(code, wire_err.to_string());
                let _ = write_frame(
                    &mut stream,
                    Op::Ping as u8,
                    FLAG_RESPONSE | FLAG_ERROR,
                    0,
                    &resp.encode(),
                );
                return;
            }
        }
    }
}

/// Dispatches one well-framed request; returns false when the
/// connection should close. Every outcome is a response frame carrying
/// the request's id.
fn handle_frame(
    stream: &mut TcpStream,
    frame: &crate::wire::Frame,
    shared: &Shared,
    engine: &mut PipelineEngine,
) -> bool {
    let Some(op) = Op::from_u8(frame.op) else {
        shared.metrics.malformed_frames.incr();
        let resp = ErrorResponse::new(
            ErrorCode::UnknownOp,
            format!("op tag {} names no operation", frame.op),
        );
        return write_frame(
            stream,
            frame.op,
            FLAG_RESPONSE | FLAG_ERROR,
            frame.req_id,
            &resp.encode(),
        )
        .is_ok();
    };
    let t0 = Instant::now();
    let result = if frame.is_response() {
        Err(ErrorResponse::new(
            ErrorCode::BadRequest,
            "a server does not accept response frames",
        ))
    } else if shared.is_shutting_down() && sheds_while_draining(op) {
        // Graceful load shedding: a draining server refuses new work
        // with a typed, retryable answer instead of doing half a job
        // against the drain deadline. Probes (ping/health/stats) and
        // repeated shutdowns still get real answers.
        shared.metrics.rejected_unavailable.incr();
        Err(
            ErrorResponse::new(ErrorCode::Unavailable, "server is draining for shutdown")
                .with_retry_after(shared.retry_after_hint()),
        )
    } else {
        handle_op(op, &frame.payload, shared, engine)
    };
    let (payload, flags, errored) = match result {
        Ok(p) => (p, FLAG_RESPONSE, false),
        Err(e) => (e.encode(), FLAG_RESPONSE | FLAG_ERROR, true),
    };
    shared.metrics.record_request(
        op,
        frame.payload.len(),
        payload.len(),
        t0.elapsed(),
        errored,
    );
    if op == Op::Shutdown && !errored {
        // Flip the flag before the ack goes out: once the client sees
        // the response, the server is observably draining.
        shared.begin_shutdown();
    }
    write_frame(stream, frame.op, flags, frame.req_id, &payload).is_ok()
}

/// True for ops a draining server sheds with `Unavailable`: the heavy
/// pipeline work it can no longer promise to finish. Probes, shutdown
/// itself, and the `ring` topology op keep answering so clients can
/// watch the drain and re-route around the departing node.
fn sheds_while_draining(op: Op) -> bool {
    !matches!(
        op,
        Op::Ping | Op::Health | Op::Stats | Op::Shutdown | Op::Ring
    )
}

/// Maps a pipeline error to a typed response: request-shaped faults are
/// the client's (`BadRequest`), archive/pipeline faults are `Pipeline`.
fn pipeline_error(e: CuszpError) -> ErrorResponse {
    let code = match e {
        CuszpError::DimsMismatch { .. }
        | CuszpError::NonFiniteInput
        | CuszpError::InvalidErrorBound(_)
        | CuszpError::InvalidParityConfig(_)
        | CuszpError::DtypeMismatch { .. }
        | CuszpError::InvalidRange { .. } => ErrorCode::BadRequest,
        _ => ErrorCode::Pipeline,
    };
    ErrorResponse::new(code, e.to_string())
}

fn wire_error(e: WireError) -> ErrorResponse {
    ErrorResponse::new(ErrorCode::BadRequest, e.to_string())
}

/// Executes one op. All fallible work funnels into typed
/// [`ErrorResponse`]s; nothing here may panic on untrusted input.
fn handle_op(
    op: Op,
    payload: &[u8],
    shared: &Shared,
    engine: &mut PipelineEngine,
) -> Result<Vec<u8>, ErrorResponse> {
    match op {
        Op::Ping => Ok(Vec::new()),
        Op::Shutdown => Ok(Vec::new()),
        Op::Stats => Ok(shared.metrics.snapshot().encode()),
        Op::Health => {
            // Answered straight from shared state — never touches the
            // engine, so it stays cheap under full load.
            let queue_depth = shared.queue.lock().expect("queue lock poisoned").len();
            Ok(crate::wire::HealthResponse {
                queue_depth: queue_depth.min(u32::MAX as usize) as u32,
                queue_capacity: shared.config.queue_capacity.min(u32::MAX as usize) as u32,
                draining: shared.is_shutting_down(),
                active_connections: shared.metrics.active_connections().min(u32::MAX as u64) as u32,
                workers: shared.config.workers.min(u32::MAX as usize) as u32,
                retry_after_ms: shared.retry_after_hint().as_millis().min(u32::MAX as u128) as u32,
                cluster: shared.cluster.as_ref().map(|c| ClusterIdentity {
                    node_id: c.node_id,
                    ring_epoch: c.ring.epoch,
                }),
            }
            .encode())
        }
        Op::Compress => handle_compress(payload, shared, engine),
        Op::Decompress => handle_decompress(payload),
        Op::Scan => {
            let report = cuszp_core::scan(payload).map_err(pipeline_error)?;
            Ok(PortableScanReport::from(&report).to_bytes())
        }
        Op::Info => handle_info(payload),
        Op::GetRange => handle_get_range(payload, shared, engine),
        Op::Ring => Ok(cluster_ctx(shared)?.ring.encode()),
        Op::Put => handle_put_shard(payload, shared),
        Op::Get => handle_get_shard(payload, shared),
        Op::ListShards => handle_list_shards(shared),
    }
}

/// The cluster context, or a typed refusal on a non-cluster server.
fn cluster_ctx(shared: &Shared) -> Result<&ClusterCtx, ErrorResponse> {
    shared.cluster.as_ref().ok_or_else(|| {
        ErrorResponse::new(
            ErrorCode::BadRequest,
            "this server is not a cluster node (no ring configured)",
        )
    })
}

/// Routing gate shared by shard puts and gets: the request must carry
/// the node's ring epoch and target a stripe slot this node owns.
/// Stale epochs answer `Redirect`, wrong owners `NotMine` — both carry
/// the authoritative owner + epoch so one client hop fixes the route.
fn check_shard_route(
    cluster: &ClusterCtx,
    shared: &Shared,
    key: &str,
    shard_idx: u16,
    req_epoch: u64,
) -> Result<(), ErrorResponse> {
    let ring = &cluster.ring;
    let owner = ring.shard_owner(key, shard_idx).ok_or_else(|| {
        ErrorResponse::new(
            ErrorCode::BadRequest,
            format!(
                "shard index {shard_idx} out of range for a {}+{} stripe",
                ring.data_shards, ring.parity_shards
            ),
        )
    })?;
    if req_epoch != ring.epoch {
        shared.metrics.redirects.incr();
        return Err(ErrorResponse::new(
            ErrorCode::Redirect,
            format!(
                "request routed under epoch {req_epoch}, ring is at {}",
                ring.epoch
            ),
        )
        .with_redirect(ring.epoch, owner.id, owner.addr.clone()));
    }
    if owner.id != cluster.node_id {
        shared.metrics.redirects.incr();
        return Err(ErrorResponse::new(
            ErrorCode::NotMine,
            format!(
                "shard {shard_idx} of '{key}' belongs to node {}, this is node {}",
                owner.id, cluster.node_id
            ),
        )
        .with_redirect(ring.epoch, owner.id, owner.addr.clone()));
    }
    Ok(())
}

fn handle_put_shard(payload: &[u8], shared: &Shared) -> Result<Vec<u8>, ErrorResponse> {
    let cluster = cluster_ctx(shared)?;
    let req = PutShardRequest::decode(payload).map_err(wire_error)?;
    check_shard_route(cluster, shared, &req.key, req.shard_idx, req.ring_epoch)?;
    cluster
        .store
        .lock()
        .expect("store lock poisoned")
        .put(
            &req.key,
            req.shard_idx,
            req.shard,
            req.total_len,
            req.archive_fnv,
            req.flags & PUT_FLAG_REPAIR != 0,
        )
        .map_err(|e| ErrorResponse::new(ErrorCode::Pipeline, e.to_string()))?;
    if req.flags & PUT_FLAG_REPAIR != 0 {
        shared.metrics.scrub_repairs.incr();
    }
    Ok(Vec::new())
}

fn handle_get_shard(payload: &[u8], shared: &Shared) -> Result<Vec<u8>, ErrorResponse> {
    let cluster = cluster_ctx(shared)?;
    let req = GetShardRequest::decode(payload).map_err(wire_error)?;
    check_shard_route(cluster, shared, &req.key, req.shard_idx, req.ring_epoch)?;
    let mut store = cluster.store.lock().expect("store lock poisoned");
    let shard = store
        .get(&req.key, req.shard_idx)
        .map_err(|e| ErrorResponse::new(ErrorCode::Pipeline, e.to_string()))?
        .ok_or_else(|| {
            ErrorResponse::new(
                ErrorCode::NotFound,
                format!(
                    "shard {} of '{}' is not stored here",
                    req.shard_idx, req.key
                ),
            )
        })?;
    Ok(GetShardResponse {
        total_len: shard.total_len,
        archive_fnv: shard.archive_fnv,
        shard: shard.bytes,
    }
    .encode())
}

fn handle_list_shards(shared: &Shared) -> Result<Vec<u8>, ErrorResponse> {
    let cluster = cluster_ctx(shared)?;
    let (records, dropped) = cluster
        .store
        .lock()
        .expect("store lock poisoned")
        .verify_and_list()
        .map_err(|e| ErrorResponse::new(ErrorCode::Pipeline, e.to_string()))?;
    if dropped > 0 {
        shared.metrics.corrupt_shards_dropped.add(dropped);
    }
    Ok(ShardListResponse { records }.encode())
}

fn alloc_scalars<T: Copy + Default>(
    bytes: &[u8],
    width: usize,
    from_le: impl FnMut(&[u8]) -> T,
) -> Result<Vec<T>, ErrorResponse> {
    let n = bytes.len() / width;
    let mut out: Vec<T> = Vec::new();
    out.try_reserve_exact(n)
        .map_err(|_| ErrorResponse::new(ErrorCode::Pipeline, "field allocation refused"))?;
    out.extend(bytes.chunks_exact(width).map(from_le));
    Ok(out)
}

fn handle_compress(
    payload: &[u8],
    shared: &Shared,
    engine: &mut PipelineEngine,
) -> Result<Vec<u8>, ErrorResponse> {
    let req = CompressRequest::decode(payload).map_err(wire_error)?;
    if let Some(p) = req.parity {
        p.validate().map_err(pipeline_error)?;
    }
    let config = Config {
        error_bound: req.error_bound,
        workflow: req.workflow,
        predictor: req.predictor,
        lossless: req.lossless,
        ..Config::default()
    };
    let compressor = Compressor::new(config);
    let target = if req.chunk_target == 0 {
        DEFAULT_CHUNK_ELEMS
    } else {
        usize::try_from(req.chunk_target)
            .map_err(|_| ErrorResponse::new(ErrorCode::BadRequest, "chunk target too large"))?
    };
    let mut arc = match req.dtype {
        Dtype::F32 => {
            let data = alloc_scalars(req.data, 4, |c| f32::from_le_bytes(c.try_into().unwrap()))?;
            compressor
                .compress_chunked_with_engine(&data, req.dims, target, engine)
                .map_err(pipeline_error)?
        }
        Dtype::F64 => {
            let data = alloc_scalars(req.data, 8, |c| f64::from_le_bytes(c.try_into().unwrap()))?;
            compressor
                .compress_chunked_f64_with_engine(&data, req.dims, target, engine)
                .map_err(pipeline_error)?
        }
    };
    for chunk in &arc.chunks {
        let plan = chunk.plan();
        match plan.predictor {
            Predictor::Lorenzo => shared.metrics.plans_lorenzo.incr(),
            Predictor::Interpolation => shared.metrics.plans_interpolation.incr(),
        }
        if plan.lossless == LosslessStage::BitshuffleLz77 {
            shared.metrics.plans_lossless.incr();
        }
    }
    if let Some(parity) = req.parity {
        // Inside a pool job the default pool degrades to one worker;
        // parity bytes are width-independent either way.
        arc.add_parity(parity, &WorkerPool::with_default_workers());
    }
    Ok(arc.to_bytes())
}

fn handle_decompress(payload: &[u8]) -> Result<Vec<u8>, ErrorResponse> {
    let req = DecompressRequest::decode(payload).map_err(wire_error)?;
    match req.mode {
        DecompressMode::Strict => {
            let (dtype, dims, data) = match cuszp_core::decompress(req.archive) {
                Ok((data, dims)) => (
                    Dtype::F32,
                    dims,
                    data.iter().flat_map(|x| x.to_le_bytes()).collect(),
                ),
                Err(CuszpError::DtypeMismatch { .. }) => {
                    let (data, dims) =
                        cuszp_core::decompress_f64(req.archive).map_err(pipeline_error)?;
                    (
                        Dtype::F64,
                        dims,
                        data.iter().flat_map(|x| x.to_le_bytes()).collect(),
                    )
                }
                Err(e) => return Err(pipeline_error(e)),
            };
            Ok(DecompressResponse {
                dtype,
                dims,
                report: None,
                data,
            }
            .encode())
        }
        DecompressMode::Recover(fill) => {
            let (dtype, dims, report, data): (_, _, _, Vec<u8>) =
                match cuszp_core::decompress_resilient(req.archive, fill) {
                    Ok(rf) => {
                        let report = PortableScanReport::from_recovered(&rf, Dtype::F32);
                        let RecoveredField { data, dims, .. } = rf;
                        (
                            Dtype::F32,
                            dims,
                            report,
                            data.iter().flat_map(|x| x.to_le_bytes()).collect(),
                        )
                    }
                    Err(CuszpError::DtypeMismatch { .. }) => {
                        let rf = cuszp_core::decompress_resilient_f64(req.archive, fill)
                            .map_err(pipeline_error)?;
                        let report = PortableScanReport::from_recovered(&rf, Dtype::F64);
                        let RecoveredField { data, dims, .. } = rf;
                        (
                            Dtype::F64,
                            dims,
                            report,
                            data.iter().flat_map(|x| x.to_le_bytes()).collect(),
                        )
                    }
                    Err(e) => return Err(pipeline_error(e)),
                };
            Ok(DecompressResponse {
                dtype,
                dims,
                report: Some(report),
                data,
            }
            .encode())
        }
    }
}

/// Serves a chunked-archive range read through the hot-slab cache.
///
/// The fetch/store hooks given to [`cuszp_core::decompress_range_with_fetch`]
/// lock the cache only for the lookup/insert itself — a miss decodes the
/// chunk with the worker's engine *outside* the lock, so a slow decode
/// never blocks other workers' hits. Slabs are stored as little-endian
/// scalar bytes (the wire encoding), making cached and fresh responses
/// byte-identical by construction.
fn serve_cached_range<T: Scalar>(
    arc: &ChunkedArchive,
    spec: &RangeSpec,
    key_hash: u64,
    shared: &Shared,
    engine: &mut PipelineEngine,
    to_le: impl Fn(&[T]) -> Vec<u8>,
    from_le: impl Fn(&[u8]) -> Vec<T>,
) -> Result<(Dims, Vec<u8>), CuszpError> {
    let caching = shared.config.cache_bytes > 0;
    let mut fetch = |i: usize| -> Option<Vec<T>> {
        if !caching {
            return None;
        }
        let hit = shared
            .cache
            .lock()
            .expect("cache lock poisoned")
            .get((key_hash, i as u32));
        match hit {
            Some(bytes) => {
                shared.metrics.cache_hits.incr();
                Some(from_le(&bytes))
            }
            None => {
                shared.metrics.cache_misses.incr();
                None
            }
        }
    };
    let mut store = |i: usize, slab: &[T]| {
        if !caching {
            return;
        }
        let evicted = shared
            .cache
            .lock()
            .expect("cache lock poisoned")
            .insert((key_hash, i as u32), Arc::new(to_le(slab)));
        shared.metrics.cache_evictions.add(evicted);
    };
    let (data, dims) = cuszp_core::decompress_range_with_fetch(
        arc,
        ReconstructEngine::FinePartialSum,
        spec,
        engine,
        &mut fetch,
        &mut store,
    )?;
    Ok((dims, to_le(&data)))
}

fn handle_get_range(
    payload: &[u8],
    shared: &Shared,
    engine: &mut PipelineEngine,
) -> Result<Vec<u8>, ErrorResponse> {
    let req = GetRangeRequest::decode(payload).map_err(wire_error)?;
    match req.mode {
        DecompressMode::Strict if is_chunked_archive(req.archive) => {
            let arc = ChunkedArchive::from_bytes(req.archive).map_err(pipeline_error)?;
            let key_hash = fnv1a(req.archive);
            let (dtype, dims, data) = match arc.dtype {
                Dtype::F32 => {
                    let (dims, data) = serve_cached_range::<f32>(
                        &arc,
                        &req.spec,
                        key_hash,
                        shared,
                        engine,
                        |s| s.iter().flat_map(|x| x.to_le_bytes()).collect(),
                        |b| {
                            b.chunks_exact(4)
                                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                                .collect()
                        },
                    )
                    .map_err(pipeline_error)?;
                    (Dtype::F32, dims, data)
                }
                Dtype::F64 => {
                    let (dims, data) = serve_cached_range::<f64>(
                        &arc,
                        &req.spec,
                        key_hash,
                        shared,
                        engine,
                        |s| s.iter().flat_map(|x| x.to_le_bytes()).collect(),
                        |b| {
                            b.chunks_exact(8)
                                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                                .collect()
                        },
                    )
                    .map_err(pipeline_error)?;
                    (Dtype::F64, dims, data)
                }
            };
            Ok(DecompressResponse {
                dtype,
                dims,
                report: None,
                data,
            }
            .encode())
        }
        DecompressMode::Strict => {
            // v1 single-chunk archives: a range read is a full decode
            // plus a slice — nothing chunk-grained to cache.
            let (dtype, dims, data) = match cuszp_core::decompress_range(req.archive, &req.spec) {
                Ok((data, dims)) => (
                    Dtype::F32,
                    dims,
                    data.iter().flat_map(|x| x.to_le_bytes()).collect(),
                ),
                Err(CuszpError::DtypeMismatch { .. }) => {
                    let (data, dims) = cuszp_core::decompress_range_f64(req.archive, &req.spec)
                        .map_err(pipeline_error)?;
                    (
                        Dtype::F64,
                        dims,
                        data.iter().flat_map(|x| x.to_le_bytes()).collect(),
                    )
                }
                Err(e) => return Err(pipeline_error(e)),
            };
            Ok(DecompressResponse {
                dtype,
                dims,
                report: None,
                data,
            }
            .encode())
        }
        DecompressMode::Recover(fill) => {
            // Damaged archives must never seed the cache: the resilient
            // path decodes uncached and reports per-chunk outcomes.
            let (dtype, dims, report, data): (_, _, _, Vec<u8>) =
                match cuszp_core::decompress_range_resilient(req.archive, &req.spec, fill) {
                    Ok(rf) => {
                        let report = PortableScanReport::from_recovered(&rf, Dtype::F32);
                        let RecoveredField { data, dims, .. } = rf;
                        (
                            Dtype::F32,
                            dims,
                            report,
                            data.iter().flat_map(|x| x.to_le_bytes()).collect(),
                        )
                    }
                    Err(CuszpError::DtypeMismatch { .. }) => {
                        let rf = cuszp_core::decompress_range_resilient_f64(
                            req.archive,
                            &req.spec,
                            fill,
                        )
                        .map_err(pipeline_error)?;
                        let report = PortableScanReport::from_recovered(&rf, Dtype::F64);
                        let RecoveredField { data, dims, .. } = rf;
                        (
                            Dtype::F64,
                            dims,
                            report,
                            data.iter().flat_map(|x| x.to_le_bytes()).collect(),
                        )
                    }
                    Err(e) => return Err(pipeline_error(e)),
                };
            Ok(DecompressResponse {
                dtype,
                dims,
                report: Some(report),
                data,
            }
            .encode())
        }
    }
}

fn handle_info(payload: &[u8]) -> Result<Vec<u8>, ErrorResponse> {
    let info = if is_chunked_archive(payload) {
        let arc = ChunkedArchive::from_bytes(payload).map_err(pipeline_error)?;
        RemoteInfo {
            format: "csz2".to_string(),
            dtype: arc.dtype,
            dims: arc.dims,
            eb: arc.eb,
            n_chunks: arc.n_chunks() as u64,
            parity: arc
                .parity
                .as_ref()
                .map(|p| (p.data_shards, p.parity_shards)),
            stored_bytes: payload.len() as u64,
        }
    } else {
        let archive = Archive::from_bytes(payload).map_err(pipeline_error)?;
        RemoteInfo {
            format: "v1".to_string(),
            dtype: archive.dtype,
            dims: archive.dims,
            eb: archive.eb,
            n_chunks: 1,
            parity: None,
            stored_bytes: payload.len() as u64,
        }
    };
    Ok(info.encode())
}
