//! The cluster-aware client: erasure-coded archive placement over
//! multiple `cuszp-server` nodes, with failover, degraded reads, and
//! anti-entropy scrub.
//!
//! An archive put under a key is split into `k` data shards of
//! `ceil(len / k)` bytes (zero-padded; `total_len` recovers the tail)
//! plus `m` Reed–Solomon parity shards, and each stripe slot is stored
//! on the node the [`Ring`] places it on. A get fetches the `k` data
//! shards fanned out over pipelined send/recv; when a node is dead or a
//! shard is missing, the read degrades: parity shards are fetched and
//! the missing slots reconstructed from any `k` of `k + m` via
//! [`cuszp_ecc::ReedSolomon`]. Either path verifies the whole-archive
//! FNV-1a recorded at put time, so degraded bytes are bit-identical to
//! healthy bytes or the call fails typed — never silently wrong.
//!
//! Routing errors are first-class: a node answering `Redirect` (stale
//! ring epoch) or `NotMine` (wrong owner) triggers one topology refresh
//! (the `ring` op against any reachable node) and a single re-route,
//! counted in [`ClusterStats`].

use crate::client::{Client, ClientError, ConnectOptions};
use crate::ring::Ring;
use crate::wire::{
    fnv1a, ErrorCode, ErrorResponse, GetShardRequest, GetShardResponse, Op, PutShardRequest,
    ShardListResponse, PUT_FLAG_REPAIR,
};
use cuszp_ecc::{EccError, ReedSolomon};
use cuszp_metrics::Counter;
use std::collections::{BTreeMap, HashMap};

/// Everything a cluster call can fail with.
#[derive(Debug)]
pub enum ClusterError {
    /// Too few shards survived to reassemble or repair the stripe.
    NotEnoughShards {
        /// The archive key.
        key: String,
        /// Shards available.
        have: usize,
        /// Shards required (`k`).
        need: usize,
    },
    /// The reassembled bytes failed the whole-archive checksum.
    Corrupt {
        /// The archive key.
        key: String,
    },
    /// Erasure-coding failure (shape mismatch in stored shards).
    Ecc(EccError),
    /// Local pipeline failure decoding the reassembled archive.
    Pipeline(cuszp_core::CuszpError),
    /// A transport/protocol failure not recovered by failover (for
    /// example: no node in the ring was reachable).
    Client(ClientError),
    /// Empty archives are not stored (a stripe needs at least one byte).
    EmptyArchive,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NotEnoughShards { key, have, need } => {
                write!(
                    f,
                    "'{key}': only {have} of the {need} required shards survive"
                )
            }
            ClusterError::Corrupt { key } => {
                write!(f, "'{key}': reassembled bytes fail the archive checksum")
            }
            ClusterError::Ecc(e) => write!(f, "erasure coding error: {e}"),
            ClusterError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            ClusterError::Client(e) => write!(f, "cluster transport error: {e}"),
            ClusterError::EmptyArchive => write!(f, "empty archives cannot be stored"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<EccError> for ClusterError {
    fn from(e: EccError) -> Self {
        ClusterError::Ecc(e)
    }
}

impl From<ClientError> for ClusterError {
    fn from(e: ClientError) -> Self {
        ClusterError::Client(e)
    }
}

impl From<cuszp_core::CuszpError> for ClusterError {
    fn from(e: cuszp_core::CuszpError) -> Self {
        ClusterError::Pipeline(e)
    }
}

/// Client-side cluster counters ([`cuszp_metrics::Counter`]), the
/// cluster analogue of [`crate::client::RetryStats`].
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// `put` calls.
    pub puts: Counter,
    /// `get` calls (including the get inside `get_range`).
    pub gets: Counter,
    /// Gets that reconstructed at least one shard from parity.
    pub degraded_reads: Counter,
    /// `Redirect`/`NotMine` answers that triggered a re-route.
    pub redirects_followed: Counter,
    /// Topology refreshes via the `ring` op.
    pub ring_refreshes: Counter,
    /// Per-shard sub-requests that failed and were survived (the
    /// stripe still assembled without them).
    pub shard_failures: Counter,
    /// Shards re-replicated by `scrub`.
    pub scrub_repairs: Counter,
}

/// Outcome of a cluster put.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutReport {
    /// Stripe slots stored successfully.
    pub shards_stored: usize,
    /// Stripe width (`k + m`).
    pub total_shards: usize,
    /// Slots that failed, with the failure rendered.
    pub failed: Vec<(u16, String)>,
}

impl PutReport {
    /// True when every stripe slot stored (full redundancy).
    pub fn fully_replicated(&self) -> bool {
        self.shards_stored == self.total_shards
    }
}

/// Outcome of a cluster get.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetOutcome {
    /// The archive bytes — bit-identical to what was put.
    pub bytes: Vec<u8>,
    /// True when any shard was rebuilt from parity.
    pub degraded: bool,
}

/// Outcome of an anti-entropy scrub pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Distinct keys seen across all inventories.
    pub keys: usize,
    /// Shards re-replicated onto their owners.
    pub repaired: u64,
    /// Missing shards that could not be rebuilt (under-replicated).
    pub unrepairable: u64,
    /// Ring members whose inventory could not be read.
    pub unreachable_nodes: u64,
}

/// How one per-shard sub-request failed.
enum ShardFailure {
    /// `Redirect`/`NotMine`: the route is stale, refresh and re-route.
    StaleRoute,
    /// The owner answered but does not hold the shard.
    Missing(String),
    /// Transport/protocol failure; the connection was dropped.
    Transport(String),
}

fn classify(e: ClientError) -> ShardFailure {
    match &e {
        ClientError::Server(r) if matches!(r.code, ErrorCode::Redirect | ErrorCode::NotMine) => {
            ShardFailure::StaleRoute
        }
        ClientError::Server(r) if r.code == ErrorCode::NotFound => {
            ShardFailure::Missing(e.to_string())
        }
        _ => ShardFailure::Transport(e.to_string()),
    }
}

/// Splits archive bytes into `k` zero-padded data shards plus `m`
/// parity shards of `shard_size = ceil(len / k)` bytes each.
fn split_stripe(bytes: &[u8], k: usize, m: usize) -> Result<(Vec<Vec<u8>>, usize), ClusterError> {
    if bytes.is_empty() {
        return Err(ClusterError::EmptyArchive);
    }
    let shard_size = bytes.len().div_ceil(k);
    let mut shards: Vec<Vec<u8>> = (0..k)
        .map(|i| {
            let lo = (i * shard_size).min(bytes.len());
            let hi = ((i + 1) * shard_size).min(bytes.len());
            let mut s = bytes[lo..hi].to_vec();
            s.resize(shard_size, 0);
            s
        })
        .collect();
    let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
    let parity = ReedSolomon::new(k, m)?.encode(&refs, shard_size)?;
    shards.extend(parity);
    Ok((shards, shard_size))
}

/// Concatenates the `k` data slots and truncates to the archive length.
fn assemble(data_slots: &[Vec<u8>], total_len: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(total_len as usize);
    for s in data_slots {
        out.extend_from_slice(s);
    }
    out.truncate(total_len as usize);
    out
}

/// A cluster-aware client: routes shard ops by the ring, fans them out
/// over per-node connections with pipelined send/recv, fails over to
/// surviving placements, and repairs under-replication on demand.
#[derive(Debug)]
pub struct ClusterClient {
    ring: Ring,
    opts: ConnectOptions,
    conns: HashMap<u64, Client>,
    stats: ClusterStats,
}

impl ClusterClient {
    /// Builds a client over a known topology. Connections are opened
    /// lazily per node.
    pub fn with_ring(ring: Ring, opts: ConnectOptions) -> ClusterClient {
        ClusterClient {
            ring,
            opts,
            conns: HashMap::new(),
            stats: ClusterStats::default(),
        }
    }

    /// Bootstraps by asking any reachable seed address for the ring.
    pub fn connect_any(
        seeds: &[String],
        opts: ConnectOptions,
    ) -> Result<ClusterClient, ClusterError> {
        let mut last: Option<ClientError> = None;
        for seed in seeds {
            match Client::connect_with(seed, &opts) {
                Ok(mut c) => match c.call(Op::Ring, &[]) {
                    Ok(payload) => {
                        let ring = Ring::decode(&payload).map_err(ClientError::Wire)?;
                        return Ok(ClusterClient::with_ring(ring, opts));
                    }
                    Err(e) => last = Some(e),
                },
                Err(e) => last = Some(e.into()),
            }
        }
        Err(ClusterError::Client(last.unwrap_or(ClientError::Protocol(
            "no seed addresses given",
        ))))
    }

    /// The topology currently routed by.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The cluster counters accumulated so far.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// The cached (or freshly opened) connection to a node.
    fn conn(&mut self, node_id: u64) -> Result<&mut Client, ClientError> {
        if !self.conns.contains_key(&node_id) {
            let addr = self
                .ring
                .node(node_id)
                .ok_or(ClientError::Protocol("node id left the ring"))?
                .addr
                .clone();
            let client = Client::connect_with(addr.as_str(), &self.opts)?;
            self.conns.insert(node_id, client);
        }
        Ok(self.conns.get_mut(&node_id).expect("just inserted"))
    }

    /// Reads the response matching `id` from a node's connection.
    fn recv_match(conn: &mut Client, id: u64) -> Result<Vec<u8>, ClientError> {
        let frame = conn.recv()?;
        if frame.is_error() {
            let err = ErrorResponse::decode(&frame.payload)?;
            if frame.req_id == id || frame.req_id == 0 {
                return Err(ClientError::Server(err));
            }
            return Err(ClientError::Protocol("error response for another request"));
        }
        if frame.req_id != id {
            return Err(ClientError::Protocol("response id mismatch"));
        }
        Ok(frame.payload)
    }

    /// Fans one request per stripe slot out over the slots' owners:
    /// send everything first, then collect every response, so the
    /// nodes work concurrently. Returns one outcome per requested slot.
    fn fan_out(
        &mut self,
        key: &str,
        slots: &[u16],
        mut payload_for: impl FnMut(u16, u64) -> Vec<u8>,
        op: Op,
    ) -> Vec<Result<Vec<u8>, ClientError>> {
        let epoch = self.ring.epoch;
        let owners: Vec<Option<u64>> = slots
            .iter()
            .map(|&s| self.ring.shard_owner(key, s).map(|n| n.id))
            .collect();
        let mut pending: Vec<Option<(u64, u64)>> = Vec::with_capacity(slots.len());
        let mut out: Vec<Result<Vec<u8>, ClientError>> = Vec::with_capacity(slots.len());
        for (i, &slot) in slots.iter().enumerate() {
            out.push(Err(ClientError::Protocol("shard request not sent")));
            let Some(owner) = owners[i] else {
                pending.push(None);
                out[i] = Err(ClientError::Protocol("stripe slot has no owner"));
                continue;
            };
            let payload = payload_for(slot, epoch);
            match self.conn(owner).and_then(|c| c.send(op, &payload)) {
                Ok(id) => pending.push(Some((owner, id))),
                Err(e) => {
                    self.conns.remove(&owner);
                    out[i] = Err(e);
                    pending.push(None);
                }
            }
        }
        for (i, p) in pending.into_iter().enumerate() {
            let Some((owner, id)) = p else { continue };
            let result = match self.conns.get_mut(&owner) {
                Some(conn) => Self::recv_match(conn, id),
                None => Err(ClientError::Protocol("connection lost mid-fan-out")),
            };
            if let Err(e) = &result {
                // A typed server answer leaves the connection usable;
                // anything else poisons the in-flight stream state.
                if !matches!(e, ClientError::Server(_)) {
                    self.conns.remove(&owner);
                }
            }
            out[i] = result;
        }
        out
    }

    /// Refreshes the topology from any reachable ring member. Adopts
    /// the answer with the highest epoch seen.
    pub fn refresh_ring(&mut self) -> Result<(), ClusterError> {
        let ids: Vec<u64> = self.ring.nodes().iter().map(|n| n.id).collect();
        let mut best: Option<Ring> = None;
        let mut last: Option<ClientError> = None;
        for id in ids {
            let answer = self.conn(id).and_then(|c| c.call(Op::Ring, &[]));
            match answer {
                Ok(payload) => match Ring::decode(&payload) {
                    Ok(ring) => {
                        if best.as_ref().is_none_or(|b| ring.epoch > b.epoch) {
                            best = Some(ring);
                        }
                    }
                    Err(e) => last = Some(ClientError::Wire(e)),
                },
                Err(e) => {
                    self.conns.remove(&id);
                    last = Some(e);
                }
            }
        }
        match best {
            Some(ring) => {
                if ring != self.ring {
                    // Stale per-node connections die with the old view.
                    self.conns.clear();
                }
                self.ring = ring;
                self.stats.ring_refreshes.incr();
                Ok(())
            }
            None => Err(ClusterError::Client(
                last.unwrap_or(ClientError::Protocol("ring has no members")),
            )),
        }
    }

    /// Stores an archive under `key`: splits it into `k` data + `m`
    /// parity shards and fans them out to their owners. Succeeds when
    /// at least `k` shards stored (the stripe is readable); the report
    /// lists any slots that failed (under-replicated until scrubbed).
    pub fn put(&mut self, key: &str, bytes: &[u8]) -> Result<PutReport, ClusterError> {
        self.stats.puts.incr();
        let k = self.ring.data_shards as usize;
        let m = self.ring.parity_shards as usize;
        let (shards, _) = split_stripe(bytes, k, m)?;
        let total_len = bytes.len() as u64;
        let archive_fnv = fnv1a(bytes);
        let slots: Vec<u16> = (0..(k + m) as u16).collect();
        let mut rerouted = false;
        loop {
            let results = self.fan_out(
                key,
                &slots,
                |slot, epoch| {
                    PutShardRequest {
                        key: key.to_string(),
                        shard_idx: slot,
                        ring_epoch: epoch,
                        total_len,
                        archive_fnv,
                        flags: 0,
                        shard: &shards[slot as usize],
                    }
                    .encode()
                },
                Op::Put,
            );
            let mut stored = 0usize;
            let mut failed: Vec<(u16, String)> = Vec::new();
            let mut stale = false;
            for (i, r) in results.into_iter().enumerate() {
                match r {
                    Ok(_) => stored += 1,
                    Err(e) => match classify(e) {
                        ShardFailure::StaleRoute => stale = true,
                        ShardFailure::Missing(msg) | ShardFailure::Transport(msg) => {
                            self.stats.shard_failures.incr();
                            failed.push((slots[i], msg));
                        }
                    },
                }
            }
            if stale && !rerouted {
                rerouted = true;
                self.stats.redirects_followed.incr();
                self.refresh_ring()?;
                continue;
            }
            if stored < k {
                return Err(ClusterError::NotEnoughShards {
                    key: key.to_string(),
                    have: stored,
                    need: k,
                });
            }
            return Ok(PutReport {
                shards_stored: stored,
                total_shards: k + m,
                failed,
            });
        }
    }

    /// Fetches the stripe slots named in `slots`, one owner each.
    fn fetch_slots(
        &mut self,
        key: &str,
        slots: &[u16],
    ) -> Vec<Result<GetShardResponse, ClientError>> {
        self.fan_out(
            key,
            slots,
            |slot, epoch| {
                GetShardRequest {
                    key: key.to_string(),
                    shard_idx: slot,
                    ring_epoch: epoch,
                }
                .encode()
            },
            Op::Get,
        )
        .into_iter()
        .map(|r| {
            r.and_then(|payload| GetShardResponse::decode(&payload).map_err(ClientError::Wire))
        })
        .collect()
    }

    /// Reads the archive stored under `key`. The healthy path fetches
    /// the `k` data shards; any miss degrades to parity reconstruction
    /// from the surviving `≥ k` of `k + m`. Both paths verify the
    /// archive checksum, so the returned bytes are bit-identical to
    /// what was put or the call fails typed.
    pub fn get(&mut self, key: &str) -> Result<GetOutcome, ClusterError> {
        self.stats.gets.incr();
        let k = self.ring.data_shards as usize;
        let m = self.ring.parity_shards as usize;
        let mut rerouted = false;
        loop {
            let data_slots: Vec<u16> = (0..k as u16).collect();
            let results = self.fetch_slots(key, &data_slots);
            if results.iter().any(|r| {
                matches!(
                    r.as_ref().err().map(|e| match e {
                        ClientError::Server(r) =>
                            matches!(r.code, ErrorCode::Redirect | ErrorCode::NotMine),
                        _ => false,
                    }),
                    Some(true)
                )
            }) && !rerouted
            {
                rerouted = true;
                self.stats.redirects_followed.incr();
                self.refresh_ring()?;
                continue;
            }
            let mut stripe: Vec<Option<Vec<u8>>> = vec![None; k + m];
            let mut meta: Option<(u64, u64)> = None;
            let mut misses = 0usize;
            for (i, r) in results.into_iter().enumerate() {
                match r {
                    Ok(resp) => {
                        meta.get_or_insert((resp.total_len, resp.archive_fnv));
                        stripe[i] = Some(resp.shard);
                    }
                    Err(_) => {
                        self.stats.shard_failures.incr();
                        misses += 1;
                    }
                }
            }
            let degraded = misses > 0;
            if degraded {
                // Failover: pull parity and rebuild the missing slots.
                let parity_slots: Vec<u16> = (k as u16..(k + m) as u16).collect();
                for (i, r) in self.fetch_slots(key, &parity_slots).into_iter().enumerate() {
                    if let Ok(resp) = r {
                        meta.get_or_insert((resp.total_len, resp.archive_fnv));
                        stripe[k + i] = Some(resp.shard);
                    } else {
                        self.stats.shard_failures.incr();
                    }
                }
                let have = stripe.iter().filter(|s| s.is_some()).count();
                if have < k {
                    return Err(ClusterError::NotEnoughShards {
                        key: key.to_string(),
                        have,
                        need: k,
                    });
                }
                let shard_size = stripe.iter().flatten().map(|s| s.len()).max().unwrap_or(0);
                ReedSolomon::new(k, m)?.reconstruct(&mut stripe, shard_size)?;
                self.stats.degraded_reads.incr();
            }
            let Some((total_len, archive_fnv)) = meta else {
                return Err(ClusterError::NotEnoughShards {
                    key: key.to_string(),
                    have: 0,
                    need: k,
                });
            };
            let data: Vec<Vec<u8>> = stripe
                .into_iter()
                .take(k)
                .map(|s| s.expect("data slots filled by fetch or reconstruct"))
                .collect();
            let bytes = assemble(&data, total_len);
            if fnv1a(&bytes) != archive_fnv {
                return Err(ClusterError::Corrupt {
                    key: key.to_string(),
                });
            }
            return Ok(GetOutcome { bytes, degraded });
        }
    }

    /// Range-reads an `f32` archive stored under `key`: fetches the
    /// stripe (degraded if needed) and decodes only the requested
    /// sub-volume locally.
    pub fn get_range(
        &mut self,
        key: &str,
        spec: &cuszp_core::RangeSpec,
    ) -> Result<(Vec<f32>, cuszp_core::Dims, bool), ClusterError> {
        let got = self.get(key)?;
        let (samples, dims) = cuszp_core::decompress_range(&got.bytes, spec)?;
        Ok((samples, dims, got.degraded))
    }

    /// [`ClusterClient::get_range`] for `f64` archives.
    pub fn get_range_f64(
        &mut self,
        key: &str,
        spec: &cuszp_core::RangeSpec,
    ) -> Result<(Vec<f64>, cuszp_core::Dims, bool), ClusterError> {
        let got = self.get(key)?;
        let (samples, dims) = cuszp_core::decompress_range_f64(&got.bytes, spec)?;
        Ok((samples, dims, got.degraded))
    }

    /// Anti-entropy pass: reads every reachable node's verified shard
    /// inventory, finds stripe slots missing from their owners (dead
    /// node that came back empty, corrupt shard dropped by the verify),
    /// rebuilds them from the surviving `≥ k`, and re-replicates with
    /// the repair flag. Safe to run any time; idempotent when healthy.
    pub fn scrub(&mut self) -> Result<ScrubReport, ClusterError> {
        let ids: Vec<u64> = self.ring.nodes().iter().map(|n| n.id).collect();
        let k = self.ring.data_shards as usize;
        let m = self.ring.parity_shards as usize;
        let mut report = ScrubReport::default();
        // (key, slot) -> present on its owner; key -> metadata.
        let mut present: HashMap<(String, u16), ()> = HashMap::new();
        let mut keys: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut reachable: Vec<u64> = Vec::new();
        for id in ids {
            // A pooled connection severed since its last use fails
            // exactly like a dead node for one call; reconnect once to
            // disambiguate before declaring the node unreachable.
            let mut answer = self.conn(id).and_then(|c| c.call(Op::ListShards, &[]));
            if matches!(answer, Err(ref e) if !matches!(e, ClientError::Server(_))) {
                self.conns.remove(&id);
                answer = self.conn(id).and_then(|c| c.call(Op::ListShards, &[]));
            }
            match answer {
                Ok(payload) => {
                    let list = ShardListResponse::decode(&payload).map_err(ClientError::Wire)?;
                    reachable.push(id);
                    for r in list.records {
                        keys.entry(r.key.clone())
                            .or_insert((r.total_len, r.archive_fnv));
                        // Only a shard on its *current* owner counts as
                        // placed; strays are invisible to gets anyway.
                        if self.ring.shard_owner(&r.key, r.shard_idx).map(|n| n.id) == Some(id) {
                            present.insert((r.key, r.shard_idx), ());
                        }
                    }
                }
                Err(e) => {
                    let _ = e;
                    self.conns.remove(&id);
                    report.unreachable_nodes += 1;
                }
            }
        }
        report.keys = keys.len();
        for (key, (total_len, archive_fnv)) in keys {
            let missing: Vec<u16> = (0..(k + m) as u16)
                .filter(|&slot| {
                    let owner = self.ring.shard_owner(&key, slot).map(|n| n.id);
                    // A slot on an unreachable node cannot be checked
                    // or repaired this pass.
                    owner.is_some_and(|o| reachable.contains(&o))
                        && !present.contains_key(&(key.clone(), slot))
                })
                .collect();
            if missing.is_empty() {
                continue;
            }
            // Rebuild the full stripe from whatever survives.
            let all_slots: Vec<u16> = (0..(k + m) as u16).collect();
            let mut stripe: Vec<Option<Vec<u8>>> = vec![None; k + m];
            for (i, r) in self.fetch_slots(&key, &all_slots).into_iter().enumerate() {
                if let Ok(resp) = r {
                    stripe[i] = Some(resp.shard);
                }
            }
            let have = stripe.iter().filter(|s| s.is_some()).count();
            if have < k {
                report.unrepairable += missing.len() as u64;
                continue;
            }
            let shard_size = stripe.iter().flatten().map(|s| s.len()).max().unwrap_or(0);
            if ReedSolomon::new(k, m)?
                .reconstruct(&mut stripe, shard_size)
                .is_err()
            {
                report.unrepairable += missing.len() as u64;
                continue;
            }
            for slot in missing {
                let shard = stripe[slot as usize]
                    .as_deref()
                    .expect("reconstruct fills every slot");
                let payload = PutShardRequest {
                    key: key.clone(),
                    shard_idx: slot,
                    ring_epoch: self.ring.epoch,
                    total_len,
                    archive_fnv,
                    flags: PUT_FLAG_REPAIR,
                    shard,
                }
                .encode();
                let owner = self
                    .ring
                    .shard_owner(&key, slot)
                    .map(|n| n.id)
                    .expect("slot in range");
                let answer = self.conn(owner).and_then(|c| c.call(Op::Put, &payload));
                match answer {
                    Ok(_) => {
                        report.repaired += 1;
                        self.stats.scrub_repairs.incr();
                    }
                    Err(e) => {
                        if !matches!(e, ClientError::Server(_)) {
                            self.conns.remove(&owner);
                        }
                        report.unrepairable += 1;
                    }
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_split_and_assemble_roundtrip() {
        for len in [1usize, 2, 3, 7, 64, 65, 1000] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let (shards, shard_size) = split_stripe(&bytes, 3, 2).unwrap();
            assert_eq!(shards.len(), 5);
            assert!(shards.iter().all(|s| s.len() == shard_size));
            let back = assemble(&shards[..3], len as u64);
            assert_eq!(back, bytes, "len {len}");
        }
        assert!(matches!(
            split_stripe(&[], 3, 2),
            Err(ClusterError::EmptyArchive)
        ));
    }

    #[test]
    fn stripe_survives_m_erasures() {
        let bytes: Vec<u8> = (0..777u32).map(|i| (i % 256) as u8).collect();
        let (shards, shard_size) = split_stripe(&bytes, 3, 2).unwrap();
        // Kill any two slots; reconstruction must restore the data.
        for a in 0..5 {
            for b in (a + 1)..5 {
                let mut stripe: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
                stripe[a] = None;
                stripe[b] = None;
                ReedSolomon::new(3, 2)
                    .unwrap()
                    .reconstruct(&mut stripe, shard_size)
                    .unwrap();
                let data: Vec<Vec<u8>> = stripe.into_iter().take(3).map(|s| s.unwrap()).collect();
                assert_eq!(assemble(&data, bytes.len() as u64), bytes, "kill {a},{b}");
            }
        }
    }
}
