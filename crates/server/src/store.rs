//! Per-node shard storage for the cluster tier.
//!
//! Each node stores the stripe slots the ring assigns it behind the
//! [`ShardBackend`] trait, with two interchangeable implementations:
//!
//! - [`ShardStore`] — the in-memory map (fast, empty after restart;
//!   a restarted node is healed by `cluster-scrub`);
//! - [`DurableShardStore`] — the log-structured [`cuszp_store::LogStore`]
//!   (segments on disk, crash recovery at boot, compaction), so a
//!   restarted node serves its shards bit-identically with zero scrub
//!   repairs.
//!
//! Both backends verify checksums on the scrub path and cache the
//! verified FNV per slot, invalidated on write — repeated inventories
//! of an unchanged node are O(index), not O(total bytes). A shard whose
//! bytes rotted is dropped (and counted) so anti-entropy sees it as
//! *missing* and re-replicates it, rather than serving corrupt bytes
//! to a degraded read.

use std::collections::HashMap;

use crate::wire::{fnv1a, ShardRecord};

/// One stored stripe slot.
#[derive(Debug, Clone)]
pub struct StoredShard {
    /// The shard bytes (RS-padded; `total_len` recovers the tail).
    pub bytes: Vec<u8>,
    /// FNV-1a of `bytes`, captured at put time.
    pub checksum: u64,
    /// Length of the whole archive the stripe encodes.
    pub total_len: u64,
    /// FNV-1a of the whole archive (end-to-end integrity check).
    pub archive_fnv: u64,
}

/// Typed backend failure. Damage inside stored data is *not* an error
/// (it degrades to a dropped slot); this is for environmental failures
/// the backend cannot absorb.
#[derive(Debug)]
pub enum StoreOpError {
    /// An allocation was refused (oversized put or read buffer).
    Alloc,
    /// The durable backend hit an I/O or validation failure.
    Backend(String),
}

impl std::fmt::Display for StoreOpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreOpError::Alloc => write!(f, "shard allocation refused"),
            StoreOpError::Backend(msg) => write!(f, "shard store: {msg}"),
        }
    }
}

impl std::error::Error for StoreOpError {}

/// The storage contract a cluster node programs against. In-memory and
/// durable stores are interchangeable behind this trait; the server
/// holds one as `Mutex<Box<dyn ShardBackend>>`.
pub trait ShardBackend: Send + std::fmt::Debug {
    /// Inserts (or replaces) a stripe slot. `repair` marks a scrub
    /// re-replication (recorded by the durable backend's log).
    fn put(
        &mut self,
        key: &str,
        shard_idx: u16,
        bytes: &[u8],
        total_len: u64,
        archive_fnv: u64,
        repair: bool,
    ) -> Result<(), StoreOpError>;

    /// Fetches a stripe slot. `Ok(None)` means not stored (or dropped
    /// as corrupt by a checksum-gated read).
    fn get(&mut self, key: &str, shard_idx: u16) -> Result<Option<StoredShard>, StoreOpError>;

    /// Number of live slots.
    fn len(&self) -> usize;

    /// Whether the store holds no slots.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every slot (test hook for simulating a wiped node; the
    /// durable backend also deletes its segment files).
    fn clear(&mut self) -> Result<(), StoreOpError>;

    /// Verifies every not-yet-verified shard checksum, drops rot
    /// (counted), and lists survivors sorted by `(key, shard_idx)`.
    fn verify_and_list(&mut self) -> Result<(Vec<ShardRecord>, u64), StoreOpError>;

    /// `"memory"` or `"durable"` — surfaced in logs and health output.
    fn kind(&self) -> &'static str;

    /// The durable backend's boot-recovery summary; `None` for memory.
    fn recovery_summary(&self) -> Option<String> {
        None
    }
}

#[derive(Debug)]
struct MemoryEntry {
    shard: StoredShard,
    /// Whether `shard.checksum` has been re-verified against the bytes
    /// since the last write. Cleared on put, set by `verify_and_list` —
    /// the cache that keeps repeated scrubs O(index).
    verified: bool,
}

/// In-memory shard map. Callers serialize access (the server wraps it
/// in a mutex inside the shared state).
#[derive(Debug, Default)]
pub struct ShardStore {
    shards: HashMap<(String, u16), MemoryEntry>,
}

impl ShardStore {
    /// An empty store.
    pub fn new() -> ShardStore {
        ShardStore::default()
    }

    /// Inserts (or replaces) a stripe slot. Allocation is reserved
    /// fallibly so an oversized put degrades to an error, not an abort.
    pub fn put(
        &mut self,
        key: &str,
        shard_idx: u16,
        bytes: &[u8],
        total_len: u64,
        archive_fnv: u64,
    ) -> Result<(), std::collections::TryReserveError> {
        let mut owned = Vec::new();
        owned.try_reserve_exact(bytes.len())?;
        owned.extend_from_slice(bytes);
        let checksum = fnv1a(&owned);
        self.shards.insert(
            (key.to_string(), shard_idx),
            MemoryEntry {
                shard: StoredShard {
                    bytes: owned,
                    checksum,
                    total_len,
                    archive_fnv,
                },
                verified: false,
            },
        );
        Ok(())
    }

    /// Fetches a stripe slot.
    pub fn get(&self, key: &str, shard_idx: u16) -> Option<&StoredShard> {
        self.shards
            .get(&(key.to_string(), shard_idx))
            .map(|e| &e.shard)
    }

    /// Number of stored slots.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Drops every slot (test hook for simulating a wiped node).
    pub fn clear(&mut self) {
        self.shards.clear();
    }

    /// Re-verifies every shard checksum not verified since its last
    /// write and lists the survivors sorted by `(key, shard_idx)`.
    /// Corrupt entries are dropped and counted — scrub treats them as
    /// missing and re-replicates. Verification results are cached, so
    /// an unchanged node's repeat inventory hashes nothing.
    pub fn verify_and_list(&mut self) -> (Vec<ShardRecord>, u64) {
        let mut dropped = 0u64;
        self.shards.retain(|_, e| {
            if e.verified {
                return true;
            }
            let ok = fnv1a(&e.shard.bytes) == e.shard.checksum;
            if ok {
                e.verified = true;
            } else {
                dropped += 1;
            }
            ok
        });
        let mut records: Vec<ShardRecord> = self
            .shards
            .iter()
            .map(|((key, idx), e)| ShardRecord {
                key: key.clone(),
                shard_idx: *idx,
                len: e.shard.bytes.len() as u64,
                checksum: e.shard.checksum,
                total_len: e.shard.total_len,
                archive_fnv: e.shard.archive_fnv,
            })
            .collect();
        records.sort_by(|a, b| a.key.cmp(&b.key).then(a.shard_idx.cmp(&b.shard_idx)));
        (records, dropped)
    }
}

impl ShardBackend for ShardStore {
    fn put(
        &mut self,
        key: &str,
        shard_idx: u16,
        bytes: &[u8],
        total_len: u64,
        archive_fnv: u64,
        _repair: bool,
    ) -> Result<(), StoreOpError> {
        ShardStore::put(self, key, shard_idx, bytes, total_len, archive_fnv)
            .map_err(|_| StoreOpError::Alloc)
    }

    fn get(&mut self, key: &str, shard_idx: u16) -> Result<Option<StoredShard>, StoreOpError> {
        Ok(ShardStore::get(self, key, shard_idx).cloned())
    }

    fn len(&self) -> usize {
        ShardStore::len(self)
    }

    fn clear(&mut self) -> Result<(), StoreOpError> {
        ShardStore::clear(self);
        Ok(())
    }

    fn verify_and_list(&mut self) -> Result<(Vec<ShardRecord>, u64), StoreOpError> {
        Ok(ShardStore::verify_and_list(self))
    }

    fn kind(&self) -> &'static str {
        "memory"
    }
}

fn map_store_err(err: cuszp_store::StoreError) -> StoreOpError {
    match err {
        cuszp_store::StoreError::Alloc { .. } => StoreOpError::Alloc,
        other => StoreOpError::Backend(other.to_string()),
    }
}

/// The durable backend: [`cuszp_store::LogStore`] adapted to the
/// [`ShardBackend`] contract. Reads are checksum-gated by the log
/// store itself; the verified-FNV cache lives in its index.
#[derive(Debug)]
pub struct DurableShardStore {
    inner: cuszp_store::LogStore,
}

impl DurableShardStore {
    /// Opens (or creates) the store, replaying its segments — the boot
    /// scan re-verifies every record checksum exactly like
    /// `list_shards`. Recovery damage is *not* an error; read it from
    /// [`DurableShardStore::recovery_report`].
    pub fn open(config: cuszp_store::StoreConfig) -> Result<DurableShardStore, StoreOpError> {
        Ok(DurableShardStore {
            inner: cuszp_store::LogStore::open(config).map_err(map_store_err)?,
        })
    }

    /// What the boot scan found.
    pub fn recovery_report(&self) -> &cuszp_store::RecoveryReport {
        self.inner.recovery_report()
    }

    /// The wrapped log store (stats hooks for tests and benches).
    pub fn log(&self) -> &cuszp_store::LogStore {
        &self.inner
    }
}

impl ShardBackend for DurableShardStore {
    fn put(
        &mut self,
        key: &str,
        shard_idx: u16,
        bytes: &[u8],
        total_len: u64,
        archive_fnv: u64,
        repair: bool,
    ) -> Result<(), StoreOpError> {
        self.inner
            .put(key, shard_idx, bytes, total_len, archive_fnv, repair)
            .map_err(map_store_err)
    }

    fn get(&mut self, key: &str, shard_idx: u16) -> Result<Option<StoredShard>, StoreOpError> {
        Ok(self
            .inner
            .get(key, shard_idx)
            .map_err(map_store_err)?
            .map(|s| StoredShard {
                bytes: s.bytes,
                checksum: s.checksum,
                total_len: s.total_len,
                archive_fnv: s.archive_fnv,
            }))
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn clear(&mut self) -> Result<(), StoreOpError> {
        self.inner.clear().map_err(map_store_err)
    }

    fn verify_and_list(&mut self) -> Result<(Vec<ShardRecord>, u64), StoreOpError> {
        let (entries, dropped) = self.inner.verify_and_list().map_err(map_store_err)?;
        let records = entries
            .into_iter()
            .map(|e| ShardRecord {
                key: e.key,
                shard_idx: e.shard_idx,
                len: e.len,
                checksum: e.checksum,
                total_len: e.total_len,
                archive_fnv: e.archive_fnv,
            })
            .collect();
        Ok((records, dropped))
    }

    fn kind(&self) -> &'static str {
        "durable"
    }

    fn recovery_summary(&self) -> Option<String> {
        let report = self.inner.recovery_report();
        let mut s = report.to_string();
        for fault in &report.faults {
            s.push_str("\n  ");
            s.push_str(&fault.to_string());
        }
        Some(s)
    }
}

/// Which backend a cluster node persists shards with — carried by
/// [`crate::ClusterConfig`] into `Server::bind_cluster`.
#[derive(Debug, Clone)]
pub enum StoreBackendConfig {
    /// The in-memory map: empty after restart, healed by scrub.
    Memory,
    /// The log-structured durable store rooted at a data directory.
    Durable(cuszp_store::StoreConfig),
}

impl StoreBackendConfig {
    /// Opens the configured backend.
    pub fn open(&self) -> Result<Box<dyn ShardBackend>, StoreOpError> {
        match self {
            StoreBackendConfig::Memory => Ok(Box::new(ShardStore::new())),
            StoreBackendConfig::Durable(config) => {
                Ok(Box::new(DurableShardStore::open(config.clone())?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut s = ShardStore::new();
        s.put("a", 0, b"hello", 5, 42).unwrap();
        s.put("a", 1, b"world", 5, 42).unwrap();
        let got = s.get("a", 1).unwrap();
        assert_eq!(got.bytes, b"world");
        assert_eq!(got.total_len, 5);
        assert_eq!(got.archive_fnv, 42);
        assert!(s.get("a", 2).is_none());
        assert!(s.get("b", 0).is_none());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn replacement_overwrites() {
        let mut s = ShardStore::new();
        s.put("k", 0, b"old", 3, 1).unwrap();
        s.put("k", 0, b"newer", 5, 2).unwrap();
        assert_eq!(s.get("k", 0).unwrap().bytes, b"newer");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn verify_drops_rotted_shards() {
        let mut s = ShardStore::new();
        s.put("good", 0, b"fine", 4, 7).unwrap();
        s.put("bad", 0, b"rots", 4, 7).unwrap();
        // Flip a byte behind the checksum's back.
        s.shards
            .get_mut(&("bad".to_string(), 0))
            .unwrap()
            .shard
            .bytes[0] ^= 0xFF;
        let (records, dropped) = s.verify_and_list();
        assert_eq!(dropped, 1);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, "good");
        assert!(s.get("bad", 0).is_none(), "corrupt shard must be gone");
        // A second pass is clean.
        let (records, dropped) = s.verify_and_list();
        assert_eq!((records.len(), dropped), (1, 0));
    }

    #[test]
    fn verification_is_cached_until_the_next_write() {
        let mut s = ShardStore::new();
        s.put("k", 0, b"bytes", 5, 1).unwrap();
        let (_, dropped) = s.verify_and_list();
        assert_eq!(dropped, 0);
        // Rot introduced *after* a verify pass is masked by the cache —
        // the documented trade-off for O(index) repeat scrubs…
        s.shards.get_mut(&("k".to_string(), 0)).unwrap().shard.bytes[0] ^= 0xFF;
        let (records, dropped) = s.verify_and_list();
        assert_eq!((records.len() as u64, dropped), (1, 0));
        // …and a write invalidates the cache, so the next pass catches
        // fresh rot again.
        s.put("k", 0, b"clean", 5, 2).unwrap();
        s.shards.get_mut(&("k".to_string(), 0)).unwrap().shard.bytes[0] ^= 0xFF;
        let (records, dropped) = s.verify_and_list();
        assert_eq!((records.len() as u64, dropped), (0, 1));
    }

    #[test]
    fn listing_is_sorted() {
        let mut s = ShardStore::new();
        s.put("b", 1, b"x", 1, 0).unwrap();
        s.put("a", 2, b"x", 1, 0).unwrap();
        s.put("a", 0, b"x", 1, 0).unwrap();
        let (records, _) = s.verify_and_list();
        let order: Vec<(String, u16)> = records
            .iter()
            .map(|r| (r.key.clone(), r.shard_idx))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a".to_string(), 0),
                ("a".to_string(), 2),
                ("b".to_string(), 1)
            ]
        );
    }

    #[test]
    fn memory_and_durable_agree_behind_the_trait() {
        let dir = std::env::temp_dir().join(format!("cuszp-backend-parity-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut backends: Vec<Box<dyn ShardBackend>> = vec![
            Box::new(ShardStore::new()),
            Box::new(
                DurableShardStore::open(cuszp_store::StoreConfig::new(&dir))
                    .expect("open durable store"),
            ),
        ];
        for b in &mut backends {
            b.put("k", 0, b"abc", 3, 11, false).unwrap();
            b.put("k", 1, b"defg", 4, 11, true).unwrap();
            b.put("k", 0, b"over", 4, 12, false).unwrap();
        }
        let lists: Vec<Vec<ShardRecord>> = backends
            .iter_mut()
            .map(|b| b.verify_and_list().unwrap().0)
            .collect();
        assert_eq!(
            lists[0], lists[1],
            "backends must produce the same inventory"
        );
        for b in &mut backends {
            let got = b.get("k", 0).unwrap().unwrap();
            assert_eq!(got.bytes, b"over");
            assert_eq!(got.archive_fnv, 12);
            assert!(b.get("nope", 0).unwrap().is_none());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
