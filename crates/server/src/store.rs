//! Per-node shard storage for the cluster tier.
//!
//! Each node stores the stripe slots the ring assigns it: a
//! `(key, shard_idx)` → bytes map with the shard checksum and archive
//! metadata captured at put time. The scrub path re-verifies checksums
//! on listing — a shard whose bytes rotted is dropped (and counted) so
//! anti-entropy sees it as *missing* and re-replicates it, rather than
//! serving corrupt bytes to a degraded read.

use std::collections::HashMap;

use crate::wire::{fnv1a, ShardRecord};

/// One stored stripe slot.
#[derive(Debug, Clone)]
pub struct StoredShard {
    /// The shard bytes (RS-padded; `total_len` recovers the tail).
    pub bytes: Vec<u8>,
    /// FNV-1a of `bytes`, captured at put time.
    pub checksum: u64,
    /// Length of the whole archive the stripe encodes.
    pub total_len: u64,
    /// FNV-1a of the whole archive (end-to-end integrity check).
    pub archive_fnv: u64,
}

/// In-memory shard map. Callers serialize access (the server wraps it
/// in a mutex inside the shared state).
#[derive(Debug, Default)]
pub struct ShardStore {
    shards: HashMap<(String, u16), StoredShard>,
}

impl ShardStore {
    /// An empty store.
    pub fn new() -> ShardStore {
        ShardStore::default()
    }

    /// Inserts (or replaces) a stripe slot. Allocation is reserved
    /// fallibly so an oversized put degrades to an error, not an abort.
    pub fn put(
        &mut self,
        key: &str,
        shard_idx: u16,
        bytes: &[u8],
        total_len: u64,
        archive_fnv: u64,
    ) -> Result<(), std::collections::TryReserveError> {
        let mut owned = Vec::new();
        owned.try_reserve_exact(bytes.len())?;
        owned.extend_from_slice(bytes);
        let checksum = fnv1a(&owned);
        self.shards.insert(
            (key.to_string(), shard_idx),
            StoredShard {
                bytes: owned,
                checksum,
                total_len,
                archive_fnv,
            },
        );
        Ok(())
    }

    /// Fetches a stripe slot.
    pub fn get(&self, key: &str, shard_idx: u16) -> Option<&StoredShard> {
        self.shards.get(&(key.to_string(), shard_idx))
    }

    /// Number of stored slots.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Drops every slot (test hook for simulating a wiped node).
    pub fn clear(&mut self) {
        self.shards.clear();
    }

    /// Re-verifies every shard checksum and lists the survivors sorted
    /// by `(key, shard_idx)`. Corrupt entries are dropped and counted —
    /// scrub treats them as missing and re-replicates.
    pub fn verify_and_list(&mut self) -> (Vec<ShardRecord>, u64) {
        let mut dropped = 0u64;
        self.shards.retain(|_, s| {
            let ok = fnv1a(&s.bytes) == s.checksum;
            if !ok {
                dropped += 1;
            }
            ok
        });
        let mut records: Vec<ShardRecord> = self
            .shards
            .iter()
            .map(|((key, idx), s)| ShardRecord {
                key: key.clone(),
                shard_idx: *idx,
                len: s.bytes.len() as u64,
                checksum: s.checksum,
                total_len: s.total_len,
                archive_fnv: s.archive_fnv,
            })
            .collect();
        records.sort_by(|a, b| a.key.cmp(&b.key).then(a.shard_idx.cmp(&b.shard_idx)));
        (records, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut s = ShardStore::new();
        s.put("a", 0, b"hello", 5, 42).unwrap();
        s.put("a", 1, b"world", 5, 42).unwrap();
        let got = s.get("a", 1).unwrap();
        assert_eq!(got.bytes, b"world");
        assert_eq!(got.total_len, 5);
        assert_eq!(got.archive_fnv, 42);
        assert!(s.get("a", 2).is_none());
        assert!(s.get("b", 0).is_none());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn replacement_overwrites() {
        let mut s = ShardStore::new();
        s.put("k", 0, b"old", 3, 1).unwrap();
        s.put("k", 0, b"newer", 5, 2).unwrap();
        assert_eq!(s.get("k", 0).unwrap().bytes, b"newer");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn verify_drops_rotted_shards() {
        let mut s = ShardStore::new();
        s.put("good", 0, b"fine", 4, 7).unwrap();
        s.put("bad", 0, b"rots", 4, 7).unwrap();
        // Flip a byte behind the checksum's back.
        s.shards.get_mut(&("bad".to_string(), 0)).unwrap().bytes[0] ^= 0xFF;
        let (records, dropped) = s.verify_and_list();
        assert_eq!(dropped, 1);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, "good");
        assert!(s.get("bad", 0).is_none(), "corrupt shard must be gone");
        // A second pass is clean.
        let (records, dropped) = s.verify_and_list();
        assert_eq!((records.len(), dropped), (1, 0));
    }

    #[test]
    fn listing_is_sorted() {
        let mut s = ShardStore::new();
        s.put("b", 1, b"x", 1, 0).unwrap();
        s.put("a", 2, b"x", 1, 0).unwrap();
        s.put("a", 0, b"x", 1, 0).unwrap();
        let (records, _) = s.verify_and_list();
        let order: Vec<(String, u16)> = records
            .iter()
            .map(|r| (r.key.clone(), r.shard_idx))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a".to_string(), 0),
                ("a".to_string(), 2),
                ("b".to_string(), 1)
            ]
        );
    }
}
