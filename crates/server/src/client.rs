//! Typed client for the compression service.
//!
//! [`Client`] wraps one TCP connection and speaks CSRP: each typed call
//! stamps a fresh request id, writes one frame, and matches the
//! response by that id. Error responses come back as
//! [`ClientError::Server`] with the server's typed
//! [`ErrorResponse`] — including `Busy` rejections, which the
//! acceptor sends with request id 0 because no request frame was ever
//! read.
//!
//! For pipelined use (several requests in flight on one connection),
//! the split [`Client::send`] / [`Client::recv`] pair exposes the raw
//! id matching.

use crate::metrics::StatsSnapshot;
use crate::wire::{
    read_frame, write_frame, CompressRequest, DecompressMode, DecompressRequest,
    DecompressResponse, ErrorResponse, Frame, GetRangeRequest, HealthResponse, Op, RemoteInfo,
    WireError, MAX_FRAME_PAYLOAD,
};
use cuszp_core::PortableScanReport;
use cuszp_metrics::Counter;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The response frame or payload failed to decode.
    Wire(WireError),
    /// The server answered with a typed error.
    Server(ErrorResponse),
    /// The server violated the protocol (wrong id, wrong frame kind).
    Protocol(&'static str),
    /// A retrying call ran out of its overall deadline before any
    /// attempt succeeded.
    DeadlineExceeded {
        /// Attempts made before the deadline closed.
        attempts: u32,
        /// Time spent on the call.
        elapsed: Duration,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::DeadlineExceeded { attempts, elapsed } => write!(
                f,
                "deadline exceeded after {attempts} attempt(s) in {:.1} ms",
                elapsed.as_secs_f64() * 1e3
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl ClientError {
    /// The server's typed error code, when this is a server error.
    pub fn server_code(&self) -> Option<crate::wire::ErrorCode> {
        match self {
            ClientError::Server(e) => Some(e.code),
            _ => None,
        }
    }

    /// The server's backoff hint, when this error carries one
    /// (load-shedding rejections: `Busy`, `Unavailable`).
    pub fn retry_after_ms(&self) -> Option<u32> {
        match self {
            ClientError::Server(e) => e.retry_after_ms,
            _ => None,
        }
    }

    /// True when the same request may succeed if re-issued: transport
    /// failures (the connection's state is unknown, so the retry
    /// reconnects) and transient server rejections. The op must *also*
    /// be idempotent ([`Op::is_idempotent`]) for a retry loop to act on
    /// this.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Wire(_) | ClientError::Protocol(_) => true,
            ClientError::Server(e) => e.code.is_transient(),
            ClientError::DeadlineExceeded { .. } => false,
        }
    }
}

/// Connection knobs for [`Client::connect_with`]. The plain
/// [`Client::connect`] has no connect timeout and no socket timeouts —
/// a dead server hangs it forever — so anything talking over a real
/// network should use these instead.
#[derive(Debug, Clone, Copy)]
pub struct ConnectOptions {
    /// TCP connect timeout, applied per resolved address.
    pub connect_timeout: Duration,
    /// Default read timeout on the connected socket.
    pub read_timeout: Option<Duration>,
    /// Default write timeout on the connected socket.
    pub write_timeout: Option<Duration>,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// One connection to a compression service.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame_payload: usize,
}

impl Client {
    /// Connects to a server with no timeouts (backward-compatible
    /// behavior: a dead server blocks indefinitely). Prefer
    /// [`Client::connect_with`] over real networks.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            next_id: 1,
            max_frame_payload: MAX_FRAME_PAYLOAD,
        })
    }

    /// Connects with a connect timeout and default socket timeouts.
    /// `opts.connect_timeout` is the *total* budget: each resolved
    /// address gets at most the time remaining, so a name resolving to
    /// several dead addresses cannot multiply the wait — the invariant
    /// [`RetryingClient`] relies on when it clamps the budget to a
    /// call's remaining deadline.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        opts: &ConnectOptions,
    ) -> std::io::Result<Client> {
        let deadline = Instant::now() + opts.connect_timeout;
        let mut last_err = None;
        for sock_addr in addr.to_socket_addrs()? {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match TcpStream::connect_timeout(&sock_addr, remaining) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.set_read_timeout(opts.read_timeout)?;
                    stream.set_write_timeout(opts.write_timeout)?;
                    return Ok(Client {
                        stream,
                        next_id: 1,
                        max_frame_payload: MAX_FRAME_PAYLOAD,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "connect budget exhausted before any address answered",
            )
        }))
    }

    /// Sets read/write timeouts on the underlying socket.
    pub fn set_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        self.stream.set_read_timeout(read)?;
        self.stream.set_write_timeout(write)
    }

    /// Sends one request frame, returning its request id. Pair with
    /// [`Client::recv`] for pipelined use.
    pub fn send(&mut self, op: Op, payload: &[u8]) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, op as u8, 0, id, payload)?;
        Ok(id)
    }

    /// Reads one response frame (any request id).
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        let frame = read_frame(&mut self.stream, self.max_frame_payload)?;
        if !frame.is_response() {
            return Err(ClientError::Protocol("expected a response frame"));
        }
        Ok(frame)
    }

    /// One full round trip: send, then match the response by id.
    pub fn call(&mut self, op: Op, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        let id = self.send(op, payload)?;
        let frame = self.recv()?;
        if frame.is_error() {
            let err = ErrorResponse::decode(&frame.payload)?;
            // Busy (and malformed-frame) rejections carry id 0: the
            // server never read a request to echo an id from.
            if frame.req_id == id || frame.req_id == 0 {
                return Err(ClientError::Server(err));
            }
            return Err(ClientError::Protocol("error response for another request"));
        }
        if frame.req_id != id {
            return Err(ClientError::Protocol("response id mismatch"));
        }
        Ok(frame.payload)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(Op::Ping, &[]).map(|_| ())
    }

    /// Compresses a raw field server-side; returns the archive bytes.
    pub fn compress(&mut self, req: &CompressRequest<'_>) -> Result<Vec<u8>, ClientError> {
        self.call(Op::Compress, &req.encode())
    }

    /// Decompresses an archive server-side. In
    /// [`DecompressMode::Recover`] the response carries a per-chunk
    /// recovery report.
    pub fn decompress(
        &mut self,
        archive: &[u8],
        mode: DecompressMode,
    ) -> Result<DecompressResponse, ClientError> {
        let req = DecompressRequest { mode, archive };
        let payload = self.call(Op::Decompress, &req.encode())?;
        Ok(DecompressResponse::decode(&payload)?)
    }

    /// Decompresses only the requested sub-volume of an archive
    /// server-side. The response's `dims` describe the sub-volume. Hot
    /// chunks are served from the server's slab cache; in
    /// [`DecompressMode::Recover`] the read bypasses the cache and the
    /// response carries per-chunk reports for the intersecting chunks.
    pub fn get_range(
        &mut self,
        archive: &[u8],
        spec: &cuszp_core::RangeSpec,
        mode: DecompressMode,
    ) -> Result<DecompressResponse, ClientError> {
        let req = GetRangeRequest {
            mode,
            spec: spec.clone(),
            archive,
        };
        let payload = self.call(Op::GetRange, &req.encode())?;
        Ok(DecompressResponse::decode(&payload)?)
    }

    /// Validates an archive chunk-by-chunk (fsck over the wire).
    pub fn scan(&mut self, archive: &[u8]) -> Result<PortableScanReport, ClientError> {
        let payload = self.call(Op::Scan, archive)?;
        PortableScanReport::from_bytes(&payload)
            .map_err(|_| ClientError::Protocol("malformed scan report"))
    }

    /// Describes an archive without decoding it.
    pub fn info(&mut self, archive: &[u8]) -> Result<RemoteInfo, ClientError> {
        let payload = self.call(Op::Info, archive)?;
        Ok(RemoteInfo::decode(&payload)?)
    }

    /// Samples the server's live metrics.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let payload = self.call(Op::Stats, &[])?;
        Ok(StatsSnapshot::decode(&payload)?)
    }

    /// Cheap load/liveness probe: queue depth and drain state, answered
    /// without touching a pipeline engine.
    pub fn health(&mut self) -> Result<HealthResponse, ClientError> {
        let payload = self.call(Op::Health, &[])?;
        Ok(HealthResponse::decode(&payload)?)
    }

    /// Asks the server to shut down gracefully. The server acks before
    /// it begins draining.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call(Op::Shutdown, &[]).map(|_| ())
    }
}

// ---------------------------------------------------------------------
// Retrying client.
// ---------------------------------------------------------------------

/// Retry knobs for [`RetryingClient`].
///
/// Backoff follows the decorrelated-jitter scheme: each delay is drawn
/// uniformly from `[base_backoff, prev * 3]`, capped at `max_backoff`,
/// from a seeded xorshift generator — so a retry storm from many
/// clients decorrelates, and any single client's schedule replays from
/// its seed. A server-sent `retry_after_ms` hint raises (never lowers)
/// the next delay.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per call, including the first (min 1).
    pub max_attempts: u32,
    /// Lower bound of every backoff draw.
    pub base_backoff: Duration,
    /// Upper cap on any backoff draw.
    pub max_backoff: Duration,
    /// Overall wall-clock budget per call, covering every attempt,
    /// reconnect, and backoff sleep.
    pub deadline: Duration,
    /// TCP connect timeout per (re)connect.
    pub connect_timeout: Duration,
    /// Per-attempt socket read timeout (clamped to the remaining
    /// deadline).
    pub read_timeout: Duration,
    /// Per-attempt socket write timeout (clamped to the remaining
    /// deadline).
    pub write_timeout: Duration,
    /// Seed for the jitter generator (0 is remapped internally).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            deadline: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff) but still
    /// applies connect/read/write timeouts and the overall deadline —
    /// the safe default for CLI use without `--retries`.
    pub fn no_retry() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }
}

/// Client-side resilience counters ([`cuszp_metrics::Counter`]), kept
/// so chaos tests and the CLI can account for every attempt:
/// `attempts == calls + retries` always holds, and every failed call
/// lands in exactly one of `exhausted`, `deadline_exceeded`, or
/// `failed_terminal`.
#[derive(Debug, Default)]
pub struct RetryStats {
    /// `call_with_retry` invocations.
    pub calls: Counter,
    /// Request attempts (first tries + retries).
    pub attempts: Counter,
    /// Attempts beyond the first within a call.
    pub retries: Counter,
    /// Successful TCP connects after the first (i.e. replacement
    /// connections after a drop).
    pub reconnects: Counter,
    /// Calls that failed because the overall deadline closed.
    pub deadline_exceeded: Counter,
    /// Calls that failed retryably on every allowed attempt.
    pub exhausted: Counter,
    /// Calls that failed with a non-retryable error.
    pub failed_terminal: Counter,
    /// Backoff sleeps whose delay was raised by a server
    /// `retry_after_ms` hint.
    pub hints_honored: Counter,
}

/// A [`Client`] wrapper that reconnects on transport errors and retries
/// idempotent ops under a [`RetryPolicy`]. `shutdown` is never retried
/// ([`Op::is_idempotent`]); every other op is a pure function of its
/// payload, so re-issuing it after an ambiguous failure is safe.
#[derive(Debug)]
pub struct RetryingClient {
    addr: String,
    policy: RetryPolicy,
    stats: RetryStats,
    conn: Option<Client>,
    ever_connected: bool,
    rng: u64,
}

impl RetryingClient {
    /// Builds a retrying client for `addr`. No connection is made until
    /// the first call.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        let mut seed = policy.seed;
        if seed == 0 {
            seed = 0x9E37_79B9_7F4A_7C15;
        }
        Self {
            addr: addr.into(),
            policy,
            stats: RetryStats::default(),
            conn: None,
            ever_connected: false,
            rng: seed,
        }
    }

    /// The resilience counters accumulated so far.
    pub fn stats(&self) -> &RetryStats {
        &self.stats
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// xorshift64* — the same generator family as the fault-injection
    /// campaigns, inlined so the client crate stays dependency-free.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Decorrelated jitter: uniform in `[base, prev * 3]`, capped.
    fn next_backoff(&mut self, prev: Duration) -> Duration {
        let base = self.policy.base_backoff.max(Duration::from_millis(1));
        let hi = prev
            .saturating_mul(3)
            .min(self.policy.max_backoff)
            .max(base);
        let span_ns = hi.saturating_sub(base).as_nanos().max(1) as u64;
        base + Duration::from_nanos(self.next_u64() % span_ns)
    }

    /// One full round trip with reconnect-and-retry. Counters account
    /// for every attempt; the overall deadline bounds the whole call.
    pub fn call_with_retry(&mut self, op: Op, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.stats.calls.incr();
        let started = Instant::now();
        let deadline_at = started + self.policy.deadline;
        let max_attempts = self.policy.max_attempts.max(1);
        let mut backoff = self.policy.base_backoff;
        let mut attempts = 0u32;
        loop {
            if Instant::now() >= deadline_at {
                self.stats.deadline_exceeded.incr();
                return Err(ClientError::DeadlineExceeded {
                    attempts,
                    elapsed: started.elapsed(),
                });
            }
            attempts += 1;
            self.stats.attempts.incr();
            if attempts > 1 {
                self.stats.retries.incr();
            }
            let err = match self.attempt(op, payload, deadline_at) {
                Ok(bytes) => return Ok(bytes),
                Err(e) => e,
            };
            let hint = err.retry_after_ms();
            if connection_is_suspect(&err) {
                self.conn = None;
            }
            if !(op.is_idempotent() && err.is_retryable()) {
                self.stats.failed_terminal.incr();
                return Err(err);
            }
            if attempts >= max_attempts {
                self.stats.exhausted.incr();
                return Err(err);
            }
            backoff = self.next_backoff(backoff);
            let mut delay = backoff;
            if let Some(ms) = hint {
                let hinted = Duration::from_millis(ms as u64);
                if hinted > delay {
                    delay = hinted;
                    self.stats.hints_honored.incr();
                }
            }
            let remaining = deadline_at.saturating_duration_since(Instant::now());
            if delay >= remaining {
                // Sleeping past the deadline cannot help; fail typed
                // and on time instead.
                self.stats.deadline_exceeded.incr();
                return Err(ClientError::DeadlineExceeded {
                    attempts,
                    elapsed: started.elapsed(),
                });
            }
            std::thread::sleep(delay);
        }
    }

    /// One attempt: ensure a connection, clamp socket timeouts to the
    /// remaining deadline, round-trip.
    fn attempt(
        &mut self,
        op: Op,
        payload: &[u8],
        deadline_at: Instant,
    ) -> Result<Vec<u8>, ClientError> {
        let remaining = deadline_at.saturating_duration_since(Instant::now());
        let floor = Duration::from_millis(1);
        if self.conn.is_none() {
            let opts = ConnectOptions {
                connect_timeout: self.policy.connect_timeout.min(remaining).max(floor),
                read_timeout: None,
                write_timeout: None,
            };
            let client = Client::connect_with(&self.addr, &opts)?;
            if self.ever_connected {
                self.stats.reconnects.incr();
            }
            self.ever_connected = true;
            self.conn = Some(client);
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        conn.set_timeouts(
            Some(self.policy.read_timeout.min(remaining).max(floor)),
            Some(self.policy.write_timeout.min(remaining).max(floor)),
        )?;
        conn.call(op, payload)
    }

    /// Liveness probe, with retries.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call_with_retry(Op::Ping, &[]).map(|_| ())
    }

    /// Compresses a raw field server-side, with retries.
    pub fn compress(&mut self, req: &CompressRequest<'_>) -> Result<Vec<u8>, ClientError> {
        self.call_with_retry(Op::Compress, &req.encode())
    }

    /// Decompresses an archive server-side, with retries.
    pub fn decompress(
        &mut self,
        archive: &[u8],
        mode: DecompressMode,
    ) -> Result<DecompressResponse, ClientError> {
        let req = DecompressRequest { mode, archive };
        let payload = self.call_with_retry(Op::Decompress, &req.encode())?;
        Ok(DecompressResponse::decode(&payload)?)
    }

    /// Range-reads an archive server-side, with retries.
    pub fn get_range(
        &mut self,
        archive: &[u8],
        spec: &cuszp_core::RangeSpec,
        mode: DecompressMode,
    ) -> Result<DecompressResponse, ClientError> {
        let req = GetRangeRequest {
            mode,
            spec: spec.clone(),
            archive,
        };
        let payload = self.call_with_retry(Op::GetRange, &req.encode())?;
        Ok(DecompressResponse::decode(&payload)?)
    }

    /// Validates an archive chunk-by-chunk, with retries.
    pub fn scan(&mut self, archive: &[u8]) -> Result<PortableScanReport, ClientError> {
        let payload = self.call_with_retry(Op::Scan, archive)?;
        PortableScanReport::from_bytes(&payload)
            .map_err(|_| ClientError::Protocol("malformed scan report"))
    }

    /// Describes an archive without decoding it, with retries.
    pub fn info(&mut self, archive: &[u8]) -> Result<RemoteInfo, ClientError> {
        let payload = self.call_with_retry(Op::Info, archive)?;
        Ok(RemoteInfo::decode(&payload)?)
    }

    /// Samples the server's live metrics, with retries.
    pub fn server_stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let payload = self.call_with_retry(Op::Stats, &[])?;
        Ok(StatsSnapshot::decode(&payload)?)
    }

    /// Health probe, with retries.
    pub fn health(&mut self) -> Result<HealthResponse, ClientError> {
        let payload = self.call_with_retry(Op::Health, &[])?;
        Ok(HealthResponse::decode(&payload)?)
    }

    /// Asks the server to shut down. Never retried: `shutdown` is the
    /// one non-idempotent op, and re-issuing it after an ambiguous
    /// failure could hit a *different* (restarted) server.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.stats.calls.incr();
        self.stats.attempts.incr();
        let deadline_at = Instant::now() + self.policy.deadline;
        let out = self.attempt(Op::Shutdown, &[], deadline_at).map(|_| ());
        if let Err(e) = &out {
            if connection_is_suspect(e) {
                self.conn = None;
            }
            self.stats.failed_terminal.incr();
        }
        out
    }
}

/// True when the connection's stream state is unknown or known-dead
/// after this error, so the next attempt must reconnect. Clean typed
/// server errors leave the connection serving — except `Busy` and
/// `MalformedFrame`, after which the server hangs up.
fn connection_is_suspect(e: &ClientError) -> bool {
    use crate::wire::ErrorCode;
    match e {
        ClientError::Io(_) | ClientError::Wire(_) | ClientError::Protocol(_) => true,
        ClientError::Server(r) => matches!(r.code, ErrorCode::Busy | ErrorCode::MalformedFrame),
        ClientError::DeadlineExceeded { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ErrorCode;

    #[test]
    fn backoff_stays_in_the_decorrelated_window() {
        let mut c = RetryingClient::new("127.0.0.1:1", RetryPolicy::default());
        let base = c.policy.base_backoff;
        let cap = c.policy.max_backoff;
        let mut prev = base;
        for _ in 0..1000 {
            let next = c.next_backoff(prev);
            assert!(next >= base, "below base: {next:?}");
            assert!(next <= cap.max(prev * 3), "above window: {next:?}");
            assert!(next <= cap + base, "above cap: {next:?}");
            prev = next;
        }
    }

    #[test]
    fn backoff_replays_from_the_seed() {
        let policy = RetryPolicy {
            seed: 42,
            ..RetryPolicy::default()
        };
        let mut a = RetryingClient::new("127.0.0.1:1", policy);
        let mut b = RetryingClient::new("127.0.0.1:1", policy);
        let mut prev = policy.base_backoff;
        for _ in 0..100 {
            let x = a.next_backoff(prev);
            assert_eq!(x, b.next_backoff(prev));
            prev = x;
        }
    }

    #[test]
    fn retryability_classification() {
        let io = ClientError::Io(std::io::Error::new(std::io::ErrorKind::TimedOut, "t"));
        assert!(io.is_retryable());
        assert!(ClientError::Wire(WireError::Truncated).is_retryable());
        assert!(ClientError::Server(ErrorResponse::new(ErrorCode::Busy, "q")).is_retryable());
        assert!(
            ClientError::Server(ErrorResponse::new(ErrorCode::Unavailable, "d")).is_retryable()
        );
        assert!(
            !ClientError::Server(ErrorResponse::new(ErrorCode::BadRequest, "b")).is_retryable()
        );
        assert!(!ClientError::Server(ErrorResponse::new(ErrorCode::Pipeline, "p")).is_retryable());
        assert!(!ClientError::DeadlineExceeded {
            attempts: 3,
            elapsed: Duration::from_secs(1)
        }
        .is_retryable());
    }

    #[test]
    fn refused_connection_fails_typed_within_deadline_and_counts() {
        // Nothing listens on this port (reserved, never assigned).
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            deadline: Duration::from_secs(5),
            connect_timeout: Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        let mut c = RetryingClient::new("127.0.0.1:1", policy);
        let t0 = Instant::now();
        let err = c.ping().unwrap_err();
        assert!(t0.elapsed() < policy.deadline);
        assert!(
            matches!(
                err,
                ClientError::Io(_) | ClientError::DeadlineExceeded { .. }
            ),
            "unexpected error: {err}"
        );
        let s = c.stats();
        assert_eq!(s.calls.get(), 1);
        assert_eq!(s.attempts.get(), s.calls.get() + s.retries.get());
        assert_eq!(
            s.exhausted.get() + s.deadline_exceeded.get() + s.failed_terminal.get(),
            1
        );
        // No connect ever succeeded, so no reconnects either.
        assert_eq!(s.reconnects.get(), 0);
    }
}
