//! Typed client for the compression service.
//!
//! [`Client`] wraps one TCP connection and speaks CSRP: each typed call
//! stamps a fresh request id, writes one frame, and matches the
//! response by that id. Error responses come back as
//! [`ClientError::Server`] with the server's typed
//! [`ErrorResponse`] — including `Busy` rejections, which the
//! acceptor sends with request id 0 because no request frame was ever
//! read.
//!
//! For pipelined use (several requests in flight on one connection),
//! the split [`Client::send`] / [`Client::recv`] pair exposes the raw
//! id matching.

use crate::metrics::StatsSnapshot;
use crate::wire::{
    read_frame, write_frame, CompressRequest, DecompressMode, DecompressRequest,
    DecompressResponse, ErrorResponse, Frame, GetRangeRequest, Op, RemoteInfo, WireError,
    MAX_FRAME_PAYLOAD,
};
use cuszp_core::PortableScanReport;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The response frame or payload failed to decode.
    Wire(WireError),
    /// The server answered with a typed error.
    Server(ErrorResponse),
    /// The server violated the protocol (wrong id, wrong frame kind).
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl ClientError {
    /// The server's typed error code, when this is a server error.
    pub fn server_code(&self) -> Option<crate::wire::ErrorCode> {
        match self {
            ClientError::Server(e) => Some(e.code),
            _ => None,
        }
    }
}

/// One connection to a compression service.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame_payload: usize,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            next_id: 1,
            max_frame_payload: MAX_FRAME_PAYLOAD,
        })
    }

    /// Sets read/write timeouts on the underlying socket.
    pub fn set_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        self.stream.set_read_timeout(read)?;
        self.stream.set_write_timeout(write)
    }

    /// Sends one request frame, returning its request id. Pair with
    /// [`Client::recv`] for pipelined use.
    pub fn send(&mut self, op: Op, payload: &[u8]) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, op as u8, 0, id, payload)?;
        Ok(id)
    }

    /// Reads one response frame (any request id).
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        let frame = read_frame(&mut self.stream, self.max_frame_payload)?;
        if !frame.is_response() {
            return Err(ClientError::Protocol("expected a response frame"));
        }
        Ok(frame)
    }

    /// One full round trip: send, then match the response by id.
    fn call(&mut self, op: Op, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        let id = self.send(op, payload)?;
        let frame = self.recv()?;
        if frame.is_error() {
            let err = ErrorResponse::decode(&frame.payload)?;
            // Busy (and malformed-frame) rejections carry id 0: the
            // server never read a request to echo an id from.
            if frame.req_id == id || frame.req_id == 0 {
                return Err(ClientError::Server(err));
            }
            return Err(ClientError::Protocol("error response for another request"));
        }
        if frame.req_id != id {
            return Err(ClientError::Protocol("response id mismatch"));
        }
        Ok(frame.payload)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(Op::Ping, &[]).map(|_| ())
    }

    /// Compresses a raw field server-side; returns the archive bytes.
    pub fn compress(&mut self, req: &CompressRequest<'_>) -> Result<Vec<u8>, ClientError> {
        self.call(Op::Compress, &req.encode())
    }

    /// Decompresses an archive server-side. In
    /// [`DecompressMode::Recover`] the response carries a per-chunk
    /// recovery report.
    pub fn decompress(
        &mut self,
        archive: &[u8],
        mode: DecompressMode,
    ) -> Result<DecompressResponse, ClientError> {
        let req = DecompressRequest { mode, archive };
        let payload = self.call(Op::Decompress, &req.encode())?;
        Ok(DecompressResponse::decode(&payload)?)
    }

    /// Decompresses only the requested sub-volume of an archive
    /// server-side. The response's `dims` describe the sub-volume. Hot
    /// chunks are served from the server's slab cache; in
    /// [`DecompressMode::Recover`] the read bypasses the cache and the
    /// response carries per-chunk reports for the intersecting chunks.
    pub fn get_range(
        &mut self,
        archive: &[u8],
        spec: &cuszp_core::RangeSpec,
        mode: DecompressMode,
    ) -> Result<DecompressResponse, ClientError> {
        let req = GetRangeRequest {
            mode,
            spec: spec.clone(),
            archive,
        };
        let payload = self.call(Op::GetRange, &req.encode())?;
        Ok(DecompressResponse::decode(&payload)?)
    }

    /// Validates an archive chunk-by-chunk (fsck over the wire).
    pub fn scan(&mut self, archive: &[u8]) -> Result<PortableScanReport, ClientError> {
        let payload = self.call(Op::Scan, archive)?;
        PortableScanReport::from_bytes(&payload)
            .map_err(|_| ClientError::Protocol("malformed scan report"))
    }

    /// Describes an archive without decoding it.
    pub fn info(&mut self, archive: &[u8]) -> Result<RemoteInfo, ClientError> {
        let payload = self.call(Op::Info, archive)?;
        Ok(RemoteInfo::decode(&payload)?)
    }

    /// Samples the server's live metrics.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let payload = self.call(Op::Stats, &[])?;
        Ok(StatsSnapshot::decode(&payload)?)
    }

    /// Asks the server to shut down gracefully. The server acks before
    /// it begins draining.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call(Op::Shutdown, &[]).map(|_| ())
    }
}
