//! The hot-slab cache: decoded chunk slabs from range reads, keyed by
//! `(archive FNV-1a, chunk index)`, evicted least-recently-used under a
//! configurable byte budget.
//!
//! Keying by the *content hash* of the archive bytes makes invalidation
//! automatic: a different (or modified) archive hashes to a different
//! key space, so stale slabs can never be served — they simply age out.
//! Entries hold `Arc`s, so a hit hands back a shared handle without
//! copying the slab, and a concurrent eviction cannot tear a read that
//! already holds the handle.
//!
//! The cache itself is a plain sequential structure; the server wraps it
//! in a `Mutex` and keeps the critical sections to lookup/insert only
//! (never decoding under the lock).

use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: archive content hash plus chunk index.
pub type SlabKey = (u64, u32);

#[derive(Debug)]
struct Entry {
    data: Arc<Vec<u8>>,
    last_used: u64,
}

/// LRU map of decoded chunk slabs (raw little-endian scalar bytes).
#[derive(Debug)]
pub struct SlabCache {
    budget: usize,
    bytes: usize,
    tick: u64,
    map: HashMap<SlabKey, Entry>,
}

impl SlabCache {
    /// An empty cache with the given byte budget. A zero budget disables
    /// caching (every `insert` is a no-op).
    pub fn new(budget: usize) -> Self {
        Self {
            budget,
            bytes: 0,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a slab, marking it most-recently-used on hit.
    pub fn get(&mut self, key: SlabKey) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.data)
        })
    }

    /// Inserts a decoded slab, evicting least-recently-used entries
    /// until the budget holds. Returns how many entries were evicted.
    /// A slab larger than the whole budget is not cached at all.
    pub fn insert(&mut self, key: SlabKey, data: Arc<Vec<u8>>) -> u64 {
        if data.len() > self.budget {
            return 0;
        }
        self.tick += 1;
        if let Some(old) = self.map.insert(
            key,
            Entry {
                data: Arc::clone(&data),
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.data.len();
        }
        self.bytes += data.len();
        let mut evicted = 0;
        while self.bytes > self.budget {
            // Budget ≥ the new entry, so the loop always terminates with
            // at least the fresh slab retained.
            let coldest = self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(k) = coldest else { break };
            if let Some(e) = self.map.remove(&k) {
                self.bytes -= e.data.len();
                evicted += 1;
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slab(n: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn hits_return_the_stored_bytes() {
        let mut c = SlabCache::new(1024);
        assert!(c.get((1, 0)).is_none());
        c.insert((1, 0), slab(100, 0xAB));
        let got = c.get((1, 0)).unwrap();
        assert_eq!(&got[..], &vec![0xAB; 100][..]);
        assert_eq!(c.bytes(), 100);
        // A different archive hash is a different key space.
        assert!(c.get((2, 0)).is_none());
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut c = SlabCache::new(250);
        c.insert((1, 0), slab(100, 1));
        c.insert((1, 1), slab(100, 2));
        // Touch chunk 0 so chunk 1 is the LRU victim.
        assert!(c.get((1, 0)).is_some());
        let evicted = c.insert((1, 2), slab(100, 3));
        assert_eq!(evicted, 1);
        assert!(c.get((1, 1)).is_none(), "LRU entry must be gone");
        assert!(c.get((1, 0)).is_some());
        assert!(c.get((1, 2)).is_some());
        assert!(c.bytes() <= 250);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut c = SlabCache::new(0);
        assert_eq!(c.insert((1, 0), slab(10, 0)), 0);
        assert!(c.is_empty());
        assert!(c.get((1, 0)).is_none());
    }

    #[test]
    fn oversized_slabs_are_not_cached() {
        let mut c = SlabCache::new(50);
        c.insert((1, 0), slab(40, 1));
        assert_eq!(c.insert((1, 1), slab(51, 2)), 0);
        assert!(c.get((1, 1)).is_none());
        assert!(c.get((1, 0)).is_some(), "resident entry untouched");
    }

    #[test]
    fn reinserting_a_key_replaces_without_double_counting() {
        let mut c = SlabCache::new(1000);
        c.insert((1, 0), slab(100, 1));
        c.insert((1, 0), slab(200, 2));
        assert_eq!(c.bytes(), 200);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get((1, 0)).unwrap().len(), 200);
    }

    #[test]
    fn held_handles_survive_eviction() {
        let mut c = SlabCache::new(100);
        c.insert((1, 0), slab(100, 7));
        let handle = c.get((1, 0)).unwrap();
        c.insert((1, 1), slab(100, 8)); // evicts (1, 0)
        assert!(c.get((1, 0)).is_none());
        assert_eq!(&handle[..], &vec![7u8; 100][..]);
    }
}
