//! On-disk fault injection for durable-store robustness testing.
//!
//! The archive campaigns in the crate root mutate *byte buffers*; a
//! durable shard store keeps its state in *files* (`seg-<n>.czl`
//! segments plus a `MANIFEST`), and its recovery contract is judged by
//! reopening the directory after damage. This module manufactures that
//! damage: seeded truncations (torn writes), bit flips (storage rot),
//! and zeroed spans, aimed at drawn offsets of the store's files.
//!
//! Same discipline as the archive campaigns: a campaign is a pure
//! function of `(directory contents, seed, n)` via [`FaultRng`], so a
//! failing case replays from its campaign index alone. The harness
//! copies the pristine directory per case ([`copy_dir`]), applies one
//! fault ([`DiskFaultCase::apply`]), and reopens.

use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::FaultRng;

/// One file mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskFault {
    /// Truncate the file to `to` bytes — a torn write / lost tail.
    Truncate { file: String, to: u64 },
    /// Flip one bit — silent storage rot.
    BitFlip { file: String, offset: u64, bit: u8 },
    /// Zero a span of bytes — a hole a failed block write leaves.
    ZeroSpan { file: String, offset: u64, len: u64 },
}

/// One corrupted-directory case from a campaign.
#[derive(Debug, Clone)]
pub struct DiskFaultCase {
    /// Campaign index (replay key together with the seed).
    pub id: usize,
    /// Human-readable description of the mutation.
    pub description: String,
    /// The mutation to apply.
    pub fault: DiskFault,
}

impl DiskFaultCase {
    /// Applies the mutation to `dir` in place.
    pub fn apply(&self, dir: &Path) -> std::io::Result<()> {
        match &self.fault {
            DiskFault::Truncate { file, to } => {
                let f = OpenOptions::new().write(true).open(dir.join(file))?;
                f.set_len(*to)?;
                f.sync_all()
            }
            DiskFault::BitFlip { file, offset, bit } => {
                let mut f = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(dir.join(file))?;
                f.seek(SeekFrom::Start(*offset))?;
                let mut b = [0u8; 1];
                f.read_exact(&mut b)?;
                b[0] ^= 1 << bit;
                f.seek(SeekFrom::Start(*offset))?;
                f.write_all(&b)?;
                f.sync_all()
            }
            DiskFault::ZeroSpan { file, offset, len } => {
                let mut f = OpenOptions::new().write(true).open(dir.join(file))?;
                f.seek(SeekFrom::Start(*offset))?;
                f.write_all(&vec![0u8; *len as usize])?;
                f.sync_all()
            }
        }
    }
}

/// The store files a campaign may aim at, with sizes, in a
/// deterministic (sorted) order. Only regular files with at least one
/// byte qualify — there is nothing to flip in an empty file.
fn target_files(dir: &Path) -> std::io::Result<Vec<(String, u64)>> {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let meta = entry.metadata()?;
        let Some(name) = entry.file_name().to_str().map(String::from) else {
            continue;
        };
        let is_store_file =
            (name.starts_with("seg-") && name.ends_with(".czl")) || name == "MANIFEST";
        if meta.is_file() && is_store_file && meta.len() > 0 {
            files.push((name, meta.len()));
        }
    }
    files.sort();
    Ok(files)
}

/// Draws `n` seeded single-fault cases against the store files under
/// `dir`. The mix cycles truncation (torn tail), bit flip (rot), and
/// zeroed span; offsets are drawn uniformly over each chosen file. The
/// same `(directory contents, seed, n)` yields the same cases.
pub fn disk_campaign(dir: &Path, seed: u64, n: usize) -> std::io::Result<Vec<DiskFaultCase>> {
    let files = target_files(dir)?;
    if files.is_empty() {
        return Ok(Vec::new());
    }
    let mut rng = FaultRng::new(seed);
    let mut cases = Vec::with_capacity(n);
    for id in 0..n {
        let (name, len) = files[rng.below(files.len())].clone();
        let (description, fault) = match id % 3 {
            0 => {
                let to = rng.below(len as usize) as u64;
                (
                    format!("truncate {name} from {len} to {to} bytes"),
                    DiskFault::Truncate { file: name, to },
                )
            }
            1 => {
                let offset = rng.below(len as usize) as u64;
                let bit = (rng.next_u64() % 8) as u8;
                (
                    format!("flip bit {bit} of byte {offset} in {name}"),
                    DiskFault::BitFlip {
                        file: name,
                        offset,
                        bit,
                    },
                )
            }
            _ => {
                let offset = rng.below(len as usize) as u64;
                let span = 1 + rng.below(32) as u64;
                let span = span.min(len - offset);
                (
                    format!("zero {span} bytes at {offset} in {name}"),
                    DiskFault::ZeroSpan {
                        file: name,
                        offset,
                        len: span,
                    },
                )
            }
        };
        cases.push(DiskFaultCase {
            id,
            description,
            fault,
        });
    }
    Ok(cases)
}

/// Copies a directory's regular files into `dst` (created fresh) — the
/// per-case victim copy, so every fault applies to pristine state.
pub fn copy_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst)?;
    for entry in fs::read_dir(src)? {
        let entry = entry?;
        if entry.metadata()?.is_file() {
            fs::copy(entry.path(), dst.join(entry.file_name()))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("faultsim-disk-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed_store_files(dir: &Path) {
        fs::write(dir.join("seg-00000001.czl"), vec![0xAB; 512]).unwrap();
        fs::write(dir.join("seg-00000002.czl"), vec![0xCD; 256]).unwrap();
        fs::write(
            dir.join("MANIFEST"),
            b"czl-manifest 1\nsegments 1 2\nnext 3\n",
        )
        .unwrap();
        fs::write(dir.join("unrelated.txt"), b"left alone").unwrap();
    }

    #[test]
    fn campaign_is_deterministic_and_targets_only_store_files() {
        let dir = temp_dir("det");
        seed_store_files(&dir);
        let a = disk_campaign(&dir, 42, 30).unwrap();
        let b = disk_campaign(&dir, 42, 30).unwrap();
        assert_eq!(a.len(), 30);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fault, y.fault, "same seed must draw the same faults");
        }
        for case in &a {
            let file = match &case.fault {
                DiskFault::Truncate { file, .. }
                | DiskFault::BitFlip { file, .. }
                | DiskFault::ZeroSpan { file, .. } => file,
            };
            assert!(
                file.starts_with("seg-") || file == "MANIFEST",
                "campaign aimed at non-store file {file}"
            );
        }
        let c = disk_campaign(&dir, 43, 30).unwrap();
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.fault != y.fault),
            "different seeds should draw different faults"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn apply_mutates_exactly_one_file() {
        let dir = temp_dir("apply");
        seed_store_files(&dir);
        let pristine = temp_dir("apply-copy");
        copy_dir(&dir, &pristine).unwrap();
        for case in disk_campaign(&dir, 7, 9).unwrap() {
            let victim = temp_dir("apply-victim");
            copy_dir(&pristine, &victim).unwrap();
            case.apply(&victim).unwrap();
            let mut changed = 0;
            for entry in fs::read_dir(&pristine).unwrap() {
                let name = entry.unwrap().file_name();
                if fs::read(victim.join(&name)).unwrap() != fs::read(pristine.join(&name)).unwrap()
                {
                    changed += 1;
                }
            }
            // Truncating to the same length or flipping a bit twice
            // can't happen — exactly one file differs, except when a
            // zero-span hits already-zero bytes (never here: seeds are
            // nonzero constants).
            assert_eq!(changed, 1, "case {} ({})", case.id, case.description);
            let _ = fs::remove_dir_all(&victim);
        }
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&pristine);
    }

    #[test]
    fn empty_dir_yields_empty_campaign() {
        let dir = temp_dir("empty");
        assert!(disk_campaign(&dir, 1, 10).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
