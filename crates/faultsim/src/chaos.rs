//! Network chaos: a seeded TCP fault-injection proxy.
//!
//! The archive campaigns in this crate corrupt *bytes at rest*; the
//! [`ChaosProxy`] corrupts *bytes in flight*. It is a std-only TCP
//! relay — a listener plus two forwarder threads per connection — whose
//! [`ChaosPolicy`] decides, from the same xorshift64* generator as the
//! corruption campaigns, whether to refuse a connection outright, cut
//! the client→server stream mid-frame, truncate the server→client
//! response, flip a payload bit, stall at a byte offset, or chop writes
//! into tiny pieces (frame splitting).
//!
//! Determinism contract: refusal is drawn once per accepted connection,
//! and each direction of a relayed connection draws one fault per
//! *epoch* of [`ChaosPolicy::redraw_bytes`] stream bytes — so a
//! long-lived connection keeps rolling fresh fault draws instead of
//! escaping chaos forever after one clean draw. Every draw is a pure
//! function of `(seed, policy, connection index, direction, epoch)`,
//! and faults are keyed to *byte offsets* in each direction's stream,
//! not to read-burst timing, so a run replays from its seed no matter
//! how the kernel coalesces segments.

use crate::FaultRng;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Forwarder copy-buffer size. Small enough that mid-frame faults land
/// inside large payloads at fine granularity.
const COPY_BUF: usize = 8 << 10;
/// How often forwarders and the acceptor re-check the stop flag.
const POLL: Duration = Duration::from_millis(25);
/// Stream-mixing constant for per-lane RNG derivation (splitmix64's
/// second round constant — any odd 64-bit mixer works).
const LANE_MIX: u64 = 0xD6E8_FEB8_6659_FD93;

/// Fault probabilities and shapes, in permille (0‥=1000).
///
/// Refusal is drawn per connection; each direction then draws at most
/// one fault per [`ChaosPolicy::redraw_bytes`]-byte epoch, in a fixed
/// order (cut, flip, stall, chop — first hit wins), so a plan is
/// replayable and each observed failure attributes to one fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPolicy {
    /// Permille of connections refused outright (closed before any
    /// byte is relayed) — the "connection refused / reset" class.
    pub refuse_per_mille: u32,
    /// Permille of epochs whose client→server stream is cut after
    /// a drawn byte offset (mid-frame request drop).
    pub cut_request_per_mille: u32,
    /// Byte window the request-cut offset is drawn from (≥ 1, measured
    /// from the epoch start, clamped to the epoch).
    pub cut_request_window: usize,
    /// Permille of epochs whose server→client stream is cut after
    /// a drawn byte offset (response truncation).
    pub cut_response_per_mille: u32,
    /// Byte window the response-cut offset is drawn from (≥ 1, measured
    /// from the epoch start, clamped to the epoch).
    pub cut_response_window: usize,
    /// Permille of epochs with one request-payload bit flipped.
    pub flip_request_per_mille: u32,
    /// Permille of epochs with one response-payload bit flipped.
    pub flip_response_per_mille: u32,
    /// Byte window flip/stall offsets are drawn from (≥ 1, measured
    /// from the epoch start, clamped to the epoch).
    pub flip_window: usize,
    /// Permille of epochs stalled once at a drawn byte offset.
    pub stall_per_mille: u32,
    /// Stall duration upper bound in milliseconds (drawn 1‥=max).
    pub stall_max_ms: u64,
    /// Permille of epochs whose bytes are chopped into `chop_piece`-byte
    /// writes (frame splitting).
    pub chop_per_mille: u32,
    /// Piece size for chopped epochs (≥ 1).
    pub chop_piece: usize,
    /// Stream bytes per fault epoch: each direction redraws its fault
    /// every `redraw_bytes` relayed bytes, so connection reuse does not
    /// amortize one lucky clean draw across a whole soak (≥ 1).
    pub redraw_bytes: usize,
    /// Node-death profile: after this many total relayed bytes (both
    /// directions summed) the proxied node "dies" — in-flight relays
    /// sever and every later connection is refused until
    /// [`ChaosProxy::revive`]. 0 disarms (the node only dies via
    /// [`ChaosProxy::kill`]).
    pub kill_after_bytes: u64,
}

impl ChaosPolicy {
    /// A policy that injects nothing: the proxy is a clean relay.
    pub fn clean() -> Self {
        Self {
            refuse_per_mille: 0,
            cut_request_per_mille: 0,
            cut_request_window: 256,
            cut_response_per_mille: 0,
            cut_response_window: 4096,
            flip_request_per_mille: 0,
            flip_response_per_mille: 0,
            flip_window: 1024,
            stall_per_mille: 0,
            stall_max_ms: 50,
            chop_per_mille: 0,
            chop_piece: 7,
            redraw_bytes: 16 << 10,
            kill_after_bytes: 0,
        }
    }

    /// A moderate mixed policy exercising every fault class.
    pub fn mixed() -> Self {
        Self {
            refuse_per_mille: 100,
            cut_request_per_mille: 100,
            cut_response_per_mille: 100,
            flip_request_per_mille: 100,
            flip_response_per_mille: 100,
            stall_per_mille: 100,
            chop_per_mille: 150,
            ..Self::clean()
        }
    }

    /// The deterministic epoch-0 fault plan for connection `conn_idx`
    /// under `seed`. Pure: same `(policy, seed, conn_idx)` → same plan.
    /// Later epochs of a long-lived connection redraw via
    /// [`ChaosPolicy::request_fault_at`] /
    /// [`ChaosPolicy::response_fault_at`].
    pub fn plan(&self, seed: u64, conn_idx: u64) -> ConnPlan {
        let mut rng = Self::lane_rng(seed, conn_idx, 0);
        ConnPlan {
            refuse: rng.below(1000) < self.refuse_per_mille as usize,
            request: self.request_fault_at(seed, conn_idx, 0),
            response: self.response_fault_at(seed, conn_idx, 0),
        }
    }

    /// The client→server fault for epoch `epoch` (bytes
    /// `epoch * redraw_bytes ..`). Pure function of its arguments.
    pub fn request_fault_at(&self, seed: u64, conn_idx: u64, epoch: u64) -> WireFault {
        let mut rng = Self::lane_rng(seed, conn_idx, epoch.wrapping_mul(2).wrapping_add(1));
        self.draw_direction(
            &mut rng,
            epoch,
            self.cut_request_per_mille,
            self.cut_request_window,
            self.flip_request_per_mille,
        )
    }

    /// The server→client fault for epoch `epoch`. Pure function of its
    /// arguments.
    pub fn response_fault_at(&self, seed: u64, conn_idx: u64, epoch: u64) -> WireFault {
        let mut rng = Self::lane_rng(seed, conn_idx, epoch.wrapping_mul(2).wrapping_add(2));
        self.draw_direction(
            &mut rng,
            epoch,
            self.cut_response_per_mille,
            self.cut_response_window,
            self.flip_response_per_mille,
        )
    }

    /// One independent RNG stream per (connection, lane): lane 0 is the
    /// refusal draw, lanes `2e+1` / `2e+2` are epoch `e`'s request /
    /// response draws — so changing one draw never shifts another.
    fn lane_rng(seed: u64, conn_idx: u64, lane: u64) -> FaultRng {
        FaultRng::new(
            seed ^ (conn_idx.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ lane.wrapping_mul(LANE_MIX),
        )
    }

    fn draw_direction(
        &self,
        rng: &mut FaultRng,
        epoch: u64,
        cut_pm: u32,
        cut_window: usize,
        flip_pm: u32,
    ) -> WireFault {
        let span = self.redraw_bytes.max(1);
        let base = (epoch as usize).saturating_mul(span);
        // Fixed draw order keeps plans stable as probabilities change
        // one class at a time.
        let cut = rng.below(1000) < cut_pm as usize;
        let cut_at = base + 1 + rng.below(cut_window.clamp(1, span));
        let flip = rng.below(1000) < flip_pm as usize;
        let flip_offset = base + rng.below(self.flip_window.clamp(1, span));
        let flip_bit = (rng.next_u64() % 8) as u8;
        let stall = rng.below(1000) < self.stall_per_mille as usize;
        let stall_offset = base + rng.below(self.flip_window.clamp(1, span));
        let stall_ms = 1 + rng.next_u64() % self.stall_max_ms.max(1);
        let chop = rng.below(1000) < self.chop_per_mille as usize;
        if cut {
            WireFault::CutAfter(cut_at)
        } else if flip {
            WireFault::FlipBit {
                offset: flip_offset,
                bit: flip_bit,
            }
        } else if stall {
            WireFault::StallAt {
                offset: stall_offset,
                millis: stall_ms,
            }
        } else if chop {
            WireFault::Chop {
                piece: self.chop_piece.max(1),
            }
        } else {
            WireFault::None
        }
    }
}

impl Default for ChaosPolicy {
    fn default() -> Self {
        Self::mixed()
    }
}

/// One epoch's fault in one direction, keyed to absolute byte offsets
/// in that direction's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Relay untouched.
    None,
    /// Forward exactly this many stream bytes, then sever the
    /// connection.
    CutAfter(usize),
    /// Flip `bit` of the byte at stream `offset` (if the stream ever
    /// reaches it).
    FlipBit {
        /// Byte offset in this direction's stream.
        offset: usize,
        /// Bit index 0‥=7.
        bit: u8,
    },
    /// Sleep `millis` once when the stream reaches `offset`.
    StallAt {
        /// Byte offset in this direction's stream.
        offset: usize,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Write this epoch in `piece`-byte pieces (frame splitting).
    Chop {
        /// Bytes per write.
        piece: usize,
    },
}

/// The deterministic epoch-0 fault plan for one accepted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnPlan {
    /// Close the client connection before relaying anything.
    pub refuse: bool,
    /// Client→server stream fault for epoch 0.
    pub request: WireFault,
    /// Server→client stream fault for epoch 0.
    pub response: WireFault,
}

/// Counters for what the proxy actually did (not just planned): faults
/// only count when their trigger offset was reached.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Connections accepted from clients.
    pub connections: AtomicU64,
    /// Connections refused (closed before relaying).
    pub refused: AtomicU64,
    /// Client→server streams cut mid-flight.
    pub requests_cut: AtomicU64,
    /// Server→client streams cut mid-flight.
    pub responses_cut: AtomicU64,
    /// Bits flipped (both directions).
    pub bits_flipped: AtomicU64,
    /// Stalls served.
    pub stalls: AtomicU64,
    /// Stream epochs relayed with chopped writes.
    pub chopped: AtomicU64,
    /// Bytes relayed client→server.
    pub bytes_up: AtomicU64,
    /// Bytes relayed server→client.
    pub bytes_down: AtomicU64,
    /// Connections refused because the proxied node was dead.
    pub dead_refusals: AtomicU64,
}

impl ChaosStats {
    /// Total faults that actually fired (refusals + cuts + flips +
    /// stalls; chopping is a delivery shape, not a failure, and is
    /// counted separately).
    pub fn faults_fired(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
            + self.requests_cut.load(Ordering::Relaxed)
            + self.responses_cut.load(Ordering::Relaxed)
            + self.bits_flipped.load(Ordering::Relaxed)
            + self.stalls.load(Ordering::Relaxed)
    }

    /// Total bytes relayed in both directions — the clock the
    /// kill-after-bytes node-death profile runs on.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up.load(Ordering::Relaxed) + self.bytes_down.load(Ordering::Relaxed)
    }
}

/// The life state of the proxied node: alive, armed to die after a byte
/// threshold, or dead (refusing forever until revived). Shared by the
/// acceptor and every forwarder.
#[derive(Debug)]
struct NodeLife {
    dead: AtomicBool,
    /// Total-relayed-bytes threshold at which the node dies
    /// (`u64::MAX` = disarmed).
    kill_at: AtomicU64,
}

impl Default for NodeLife {
    fn default() -> Self {
        Self {
            dead: AtomicBool::new(false),
            kill_at: AtomicU64::new(u64::MAX),
        }
    }
}

/// A seeded TCP fault-injection proxy in front of one upstream address.
///
/// Start with [`ChaosProxy::start`], point clients at
/// [`ChaosProxy::local_addr`], and stop with [`ChaosProxy::stop`] (also
/// runs on drop). Every accepted connection draws its deterministic
/// faults from `(seed, policy, connection index)`.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    life: Arc<NodeLife>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts relaying to `upstream`.
    pub fn start(
        upstream: SocketAddr,
        policy: ChaosPolicy,
        seed: u64,
    ) -> std::io::Result<ChaosProxy> {
        Self::bind("127.0.0.1:0".parse().unwrap(), upstream, policy, seed)
    }

    /// Binds `listen` (any port, including 0 for ephemeral) and starts
    /// relaying to `upstream`.
    pub fn bind(
        listen: SocketAddr,
        upstream: SocketAddr,
        policy: ChaosPolicy,
        seed: u64,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ChaosStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let life = Arc::new(NodeLife::default());
        if policy.kill_after_bytes > 0 {
            life.kill_at
                .store(policy.kill_after_bytes, Ordering::Relaxed);
        }
        let acceptor = {
            let stats = stats.clone();
            let stop = stop.clone();
            let life = life.clone();
            std::thread::spawn(move || {
                accept_loop(listener, upstream, policy, seed, stats, stop, life)
            })
        };
        Ok(ChaosProxy {
            addr,
            stats,
            stop,
            life,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live injection counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Stops accepting, severs in-flight relays, joins all threads.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Kills the proxied node now: in-flight relays sever within one
    /// poll tick and every later connection is refused until
    /// [`ChaosProxy::revive`] — the refuse-forever node-death profile.
    pub fn kill(&self) {
        self.life.dead.store(true, Ordering::Relaxed);
    }

    /// Brings a killed node back: new connections relay again. The
    /// kill-after-bytes trigger stays disarmed until re-armed.
    pub fn revive(&self) {
        self.life.kill_at.store(u64::MAX, Ordering::Relaxed);
        self.life.dead.store(false, Ordering::Relaxed);
    }

    /// Whether the proxied node is currently dead.
    pub fn is_dead(&self) -> bool {
        self.life.dead.load(Ordering::Relaxed)
    }

    /// Arms the node to die after `delta` more relayed bytes (both
    /// directions summed) — the kill-mid-workload profile, seedable by
    /// drawing `delta` from a campaign RNG.
    pub fn arm_kill_after(&self, delta: u64) {
        let at = self.stats.total_bytes().saturating_add(delta.max(1));
        self.life.kill_at.store(at, Ordering::Relaxed);
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    policy: ChaosPolicy,
    seed: u64,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    life: Arc<NodeLife>,
) {
    let mut conn_idx = 0u64;
    let mut relays: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((client, _peer)) => {
                let plan = policy.plan(seed, conn_idx);
                let idx = conn_idx;
                conn_idx += 1;
                stats.connections.fetch_add(1, Ordering::Relaxed);
                if life.dead.load(Ordering::Relaxed) {
                    // A dead node accepts nothing: the socket closes
                    // before any byte, exactly like a crashed process
                    // whose port is gone.
                    stats.dead_refusals.fetch_add(1, Ordering::Relaxed);
                    drop(client);
                    continue;
                }
                if plan.refuse {
                    stats.refused.fetch_add(1, Ordering::Relaxed);
                    // Dropping the accepted socket closes it before any
                    // response byte — the client sees a severed
                    // connection exactly where a refused/reset one dies.
                    drop(client);
                    continue;
                }
                let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5))
                else {
                    drop(client);
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                let up = {
                    let stats = stats.clone();
                    let stop = stop.clone();
                    let life = life.clone();
                    std::thread::spawn(move || {
                        forward(
                            client,
                            server,
                            policy,
                            seed,
                            idx,
                            Direction::Up,
                            stats,
                            stop,
                            life,
                        )
                    })
                };
                let down = {
                    let stats = stats.clone();
                    let stop = stop.clone();
                    let life = life.clone();
                    std::thread::spawn(move || {
                        forward(
                            server2,
                            client2,
                            policy,
                            seed,
                            idx,
                            Direction::Down,
                            stats,
                            stop,
                            life,
                        )
                    })
                };
                relays.push(up);
                relays.push(down);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(POLL),
        }
        // Reap finished relays so a long soak doesn't hoard handles.
        relays.retain(|h| !h.is_finished());
    }
    for h in relays {
        let _ = h.join();
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Client → server (requests).
    Up,
    /// Server → client (responses).
    Down,
}

fn fault_for(
    policy: &ChaosPolicy,
    seed: u64,
    conn_idx: u64,
    dir: Direction,
    epoch: u64,
) -> WireFault {
    match dir {
        Direction::Up => policy.request_fault_at(seed, conn_idx, epoch),
        Direction::Down => policy.response_fault_at(seed, conn_idx, epoch),
    }
}

/// Copies `src` → `dst` applying the policy's per-epoch [`WireFault`]s,
/// until EOF, error, fault-cut, or proxy stop.
#[allow(clippy::too_many_arguments)]
fn forward(
    mut src: TcpStream,
    mut dst: TcpStream,
    policy: ChaosPolicy,
    seed: u64,
    conn_idx: u64,
    dir: Direction,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    life: Arc<NodeLife>,
) {
    let _ = src.set_read_timeout(Some(POLL));
    let span = policy.redraw_bytes.max(1);
    let mut buf = [0u8; COPY_BUF];
    let mut offset = 0usize; // bytes relayed so far in this direction
    let mut epoch = 0u64;
    let mut fault = fault_for(&policy, seed, conn_idx, dir, 0);
    let mut chop_counted = false;
    // On clean EOF the half-close is propagated (shutdown write on
    // `dst`) and the opposite direction keeps flowing; a fault, error,
    // or stop severs both sockets outright.
    let mut sever = true;
    'relay: loop {
        if stop.load(Ordering::Relaxed) || life.dead.load(Ordering::Relaxed) {
            break;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                sever = false;
                break;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        // Split the burst at epoch boundaries so each sub-chunk sees
        // exactly its epoch's fault — firing stays a function of byte
        // offsets, never of how the kernel coalesced the reads.
        let mut rest: &mut [u8] = &mut buf[..n];
        while !rest.is_empty() {
            let cur = (offset / span) as u64;
            if cur != epoch {
                epoch = cur;
                fault = fault_for(&policy, seed, conn_idx, dir, epoch);
                chop_counted = false;
            }
            let epoch_end = (cur as usize + 1).saturating_mul(span);
            let take = rest.len().min(epoch_end - offset);
            let (sub, tail) = rest.split_at_mut(take);
            rest = tail;
            match fault {
                WireFault::None => {}
                WireFault::CutAfter(cut_at) => {
                    if offset + sub.len() >= cut_at {
                        let keep = cut_at.saturating_sub(offset);
                        let partial = &sub[..keep];
                        if !partial.is_empty() && dst.write_all(partial).is_err() {
                            break 'relay;
                        }
                        match dir {
                            Direction::Up => stats.requests_cut.fetch_add(1, Ordering::Relaxed),
                            Direction::Down => stats.responses_cut.fetch_add(1, Ordering::Relaxed),
                        };
                        count_bytes(&stats, dir, keep);
                        break 'relay;
                    }
                }
                WireFault::FlipBit { offset: at, bit } => {
                    if at >= offset && at < offset + sub.len() {
                        sub[at - offset] ^= 1 << (bit & 7);
                        stats.bits_flipped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                WireFault::StallAt { offset: at, millis } => {
                    if at >= offset && at < offset + sub.len() {
                        stats.stalls.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                }
                WireFault::Chop { piece } => {
                    if !chop_counted {
                        stats.chopped.fetch_add(1, Ordering::Relaxed);
                        chop_counted = true;
                    }
                    for p in sub.chunks(piece.max(1)) {
                        if dst.write_all(p).is_err() {
                            break 'relay;
                        }
                        let _ = dst.flush();
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    count_bytes(&stats, dir, sub.len());
                    offset += take;
                    continue;
                }
            }
            if dst.write_all(sub).is_err() {
                break 'relay;
            }
            count_bytes(&stats, dir, sub.len());
            offset += take;
            // Kill-after-bytes: crossing the armed threshold kills the
            // node mid-workload — this relay severs and the acceptor
            // refuses everything until a revive.
            if stats.total_bytes() >= life.kill_at.load(Ordering::Relaxed) {
                life.dead.store(true, Ordering::Relaxed);
                break 'relay;
            }
        }
    }
    if sever {
        // Sever both directions: half-open relays would otherwise leave
        // the peer forwarder (and the client) waiting out full timeouts.
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    } else {
        let _ = dst.shutdown(Shutdown::Write);
    }
}

fn count_bytes(stats: &ChaosStats, dir: Direction, n: usize) {
    match dir {
        Direction::Up => stats.bytes_up.fetch_add(n as u64, Ordering::Relaxed),
        Direction::Down => stats.bytes_down.fetch_add(n as u64, Ordering::Relaxed),
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A tiny echo server: accepts one connection at a time, echoes
    /// bytes until EOF. Returns its address and a stop closure.
    fn start_echo() -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut s, _)) => {
                            let _ = s.set_read_timeout(Some(Duration::from_millis(25)));
                            let mut buf = [0u8; 4096];
                            loop {
                                match s.read(&mut buf) {
                                    Ok(0) => break,
                                    Ok(n) => {
                                        if s.write_all(&buf[..n]).is_err() {
                                            break;
                                        }
                                    }
                                    Err(e)
                                        if e.kind() == std::io::ErrorKind::WouldBlock
                                            || e.kind() == std::io::ErrorKind::TimedOut =>
                                    {
                                        if stop.load(Ordering::Relaxed) {
                                            break;
                                        }
                                    }
                                    Err(_) => break,
                                }
                            }
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
        };
        (addr, stop, handle)
    }

    fn round_trip(addr: SocketAddr, payload: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(2)))?;
        s.write_all(payload)?;
        s.shutdown(Shutdown::Write)?;
        let mut out = Vec::new();
        s.read_to_end(&mut out)?;
        Ok(out)
    }

    #[test]
    fn clean_policy_relays_bytes_intact() {
        let (echo, stop, handle) = start_echo();
        let mut proxy = ChaosProxy::start(echo, ChaosPolicy::clean(), 7).unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        let back = round_trip(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back, payload);
        assert_eq!(proxy.stats().faults_fired(), 0);
        assert!(proxy.stats().bytes_up.load(Ordering::Relaxed) >= payload.len() as u64);
        proxy.stop();
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn refuse_all_severs_every_connection() {
        let (echo, stop, handle) = start_echo();
        let policy = ChaosPolicy {
            refuse_per_mille: 1000,
            ..ChaosPolicy::clean()
        };
        let mut proxy = ChaosProxy::start(echo, policy, 11).unwrap();
        for _ in 0..5 {
            // The connect itself may succeed (the proxy accepts before
            // refusing) but no byte ever comes back.
            if let Ok(bytes) = round_trip(proxy.local_addr(), b"hello") {
                assert!(bytes.is_empty());
            }
        }
        assert_eq!(proxy.stats().refused.load(Ordering::Relaxed), 5);
        proxy.stop();
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn response_cut_truncates_at_the_planned_offset() {
        let (echo, stop, handle) = start_echo();
        let policy = ChaosPolicy {
            cut_response_per_mille: 1000,
            cut_response_window: 64,
            ..ChaosPolicy::clean()
        };
        let seed = 21;
        let mut proxy = ChaosProxy::start(echo, policy, seed).unwrap();
        let payload = vec![0xABu8; 1000];
        let back = round_trip(proxy.local_addr(), &payload).unwrap_or_default();
        let plan = policy.plan(seed, 0);
        let WireFault::CutAfter(cut_at) = plan.response else {
            panic!("plan should cut the response");
        };
        assert!(back.len() <= cut_at, "{} > {}", back.len(), cut_at);
        assert_eq!(back, payload[..back.len()]);
        assert_eq!(proxy.stats().responses_cut.load(Ordering::Relaxed), 1);
        proxy.stop();
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn bit_flip_corrupts_exactly_the_planned_byte() {
        let (echo, stop, handle) = start_echo();
        let policy = ChaosPolicy {
            flip_response_per_mille: 1000,
            flip_window: 512,
            ..ChaosPolicy::clean()
        };
        let seed = 33;
        let mut proxy = ChaosProxy::start(echo, policy, seed).unwrap();
        // One epoch's worth of zeros: exactly the epoch-0 flip applies.
        let payload = vec![0u8; 1024];
        let back = round_trip(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back.len(), payload.len());
        let plan = policy.plan(seed, 0);
        let WireFault::FlipBit { offset, bit } = plan.response else {
            panic!("plan should flip a response bit");
        };
        for (i, (&a, &b)) in back.iter().zip(payload.iter()).enumerate() {
            if i == offset {
                assert_eq!(a, b ^ (1 << bit), "flip at {i}");
            } else {
                assert_eq!(a, b, "unexpected diff at {i}");
            }
        }
        assert_eq!(proxy.stats().bits_flipped.load(Ordering::Relaxed), 1);
        proxy.stop();
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn chop_preserves_content() {
        let (echo, stop, handle) = start_echo();
        let policy = ChaosPolicy {
            chop_per_mille: 1000,
            chop_piece: 3,
            ..ChaosPolicy::clean()
        };
        let mut proxy = ChaosProxy::start(echo, policy, 5).unwrap();
        let payload: Vec<u8> = (0..500u16).map(|i| (i % 251) as u8).collect();
        let back = round_trip(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back, payload);
        assert!(proxy.stats().chopped.load(Ordering::Relaxed) >= 1);
        proxy.stop();
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn long_lived_connections_keep_redrawing_faults() {
        // A stream many epochs long must see fresh draws: with a 1 KiB
        // epoch and flips at 500‰, 64 epochs of zeros cannot all draw
        // clean (p < 1e-19 per seed, and the seed is fixed anyway).
        let (echo, stop, handle) = start_echo();
        let policy = ChaosPolicy {
            flip_response_per_mille: 500,
            flip_window: 1024,
            redraw_bytes: 1024,
            ..ChaosPolicy::clean()
        };
        let mut proxy = ChaosProxy::start(echo, policy, 13).unwrap();
        let payload = vec![0u8; 64 * 1024];
        let back = round_trip(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back.len(), payload.len());
        let flips = proxy.stats().bits_flipped.load(Ordering::Relaxed);
        assert!(flips > 1, "expected multiple epoch flips, saw {flips}");
        let diffs = back.iter().zip(&payload).filter(|(a, b)| a != b).count();
        assert_eq!(diffs as u64, flips, "each fired flip corrupts one byte");
        proxy.stop();
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn killed_node_refuses_until_revived() {
        let (echo, stop, handle) = start_echo();
        let mut proxy = ChaosProxy::start(echo, ChaosPolicy::clean(), 3).unwrap();
        assert_eq!(round_trip(proxy.local_addr(), b"alive").unwrap(), b"alive");
        proxy.kill();
        assert!(proxy.is_dead());
        for _ in 0..3 {
            // Dead: either the round trip errors or nothing comes back.
            if let Ok(bytes) = round_trip(proxy.local_addr(), b"dead?") {
                assert!(bytes.is_empty());
            }
        }
        assert_eq!(proxy.stats().dead_refusals.load(Ordering::Relaxed), 3);
        proxy.revive();
        assert!(!proxy.is_dead());
        assert_eq!(round_trip(proxy.local_addr(), b"back").unwrap(), b"back");
        proxy.stop();
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn kill_after_bytes_dies_mid_workload() {
        let (echo, stop, handle) = start_echo();
        let policy = ChaosPolicy {
            kill_after_bytes: 4096,
            ..ChaosPolicy::clean()
        };
        let mut proxy = ChaosProxy::start(echo, policy, 17).unwrap();
        // Push well past the threshold: the relay must sever partway
        // and the node must stay dead afterwards.
        let payload = vec![0x5Au8; 64 * 1024];
        let back = round_trip(proxy.local_addr(), &payload).unwrap_or_default();
        assert!(
            back.len() < payload.len(),
            "node should die before echoing {} bytes",
            payload.len()
        );
        assert!(proxy.is_dead());
        if let Ok(bytes) = round_trip(proxy.local_addr(), b"gone") {
            assert!(bytes.is_empty());
        }
        assert!(proxy.stats().dead_refusals.load(Ordering::Relaxed) >= 1);
        proxy.stop();
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn plans_replay_from_the_seed() {
        let policy = ChaosPolicy::mixed();
        for conn in 0..200 {
            assert_eq!(policy.plan(99, conn), policy.plan(99, conn));
        }
        for epoch in 0..50 {
            assert_eq!(
                policy.request_fault_at(99, 3, epoch),
                policy.request_fault_at(99, 3, epoch)
            );
            assert_eq!(
                policy.response_fault_at(99, 3, epoch),
                policy.response_fault_at(99, 3, epoch)
            );
        }
        // Different seeds should not produce the same plan sequence.
        let same = (0..200).all(|c| policy.plan(1, c) == policy.plan(2, c));
        assert!(!same);
        // Every fault class appears somewhere in a long-enough run.
        let mut saw_refuse = false;
        let mut saw_cut = false;
        let mut saw_flip = false;
        let mut saw_stall = false;
        let mut saw_chop = false;
        for c in 0..2000 {
            let p = policy.plan(7, c);
            saw_refuse |= p.refuse;
            for f in [p.request, p.response] {
                match f {
                    WireFault::CutAfter(_) => saw_cut = true,
                    WireFault::FlipBit { .. } => saw_flip = true,
                    WireFault::StallAt { .. } => saw_stall = true,
                    WireFault::Chop { .. } => saw_chop = true,
                    WireFault::None => {}
                }
            }
        }
        assert!(saw_refuse && saw_cut && saw_flip && saw_stall && saw_chop);
    }
}
