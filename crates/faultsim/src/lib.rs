//! Deterministic fault injection for archive robustness testing.
//!
//! Decompressors face storage bit-rot, torn writes, and truncated
//! transfers; the recovery contract (see `DESIGN.md`) promises that no
//! corrupt input panics, over-allocates, or silently yields wrong data.
//! This crate manufactures the corrupt inputs that check the promise:
//! seeded, reproducible mutations of a valid archive — truncations at
//! and around section boundaries, bit-flip sweeps, length-field
//! inflation, and chunk-level reorder/duplicate/delete surgery on CSZ2
//! containers.
//!
//! Everything is driven by [`FaultRng`], a fixed xorshift64* generator:
//! a campaign is a pure function of `(base bytes, seed, n)`, so a
//! failing case replays from its campaign index alone.
//!
//! The crate deliberately depends on nothing: it knows just enough of
//! the CSZ2 layout (magic, fixed header size, length table) to aim
//! structured faults, duplicated here as constants so the harness stays
//! usable from any crate's dev-dependencies without cycles.

pub mod chaos;
pub mod disk;

pub use chaos::{ChaosPolicy, ChaosProxy, ChaosStats, ConnPlan, WireFault};
pub use disk::{copy_dir, disk_campaign, DiskFault, DiskFaultCase};

use std::ops::Range;

/// xorshift64* — tiny, seedable, good enough for fault placement.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seeds the generator (a zero seed is remapped; xorshift has a
    /// zero fixed point).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// CSZ2 container magic ("CSZ2", little-endian).
pub const CSZ2_MAGIC: u32 = 0x325A_5343;
/// Fixed CSZ2 header size: magic, version, rank, dtype, extents, eb,
/// chunk target, chunk count.
pub const CSZ2_HEADER_BYTES: usize = 4 + 2 + 1 + 1 + 24 + 8 + 8 + 4;
/// Parity section magic ("CSZP", little-endian).
pub const CSZP_MAGIC: u32 = 0x505A_5343;
/// Fixed CSZP parity header size: magic, version, k, m, pad, shard
/// size, region length, stripe count, pad, header checksum.
pub const CSZP_HEADER_BYTES: usize = 40;

/// Byte map of a CSZ2 container, for aiming structured faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csz2Layout {
    /// Declared chunk count.
    pub n_chunks: usize,
    /// Byte range of the chunk length table.
    pub table: Range<usize>,
    /// Byte range of each chunk body, in order.
    pub chunks: Vec<Range<usize>>,
    /// Byte range of the trailing CSZP parity section, when present.
    pub parity: Option<Range<usize>>,
}

/// Parses the layout of a **valid** CSZ2 container. Returns `None` for
/// anything that does not parse cleanly — the harness aims faults from
/// the pristine base, never from an already-mutated body.
pub fn parse_csz2(bytes: &[u8]) -> Option<Csz2Layout> {
    if bytes.len() < CSZ2_HEADER_BYTES {
        return None;
    }
    if u32::from_le_bytes(bytes[0..4].try_into().unwrap()) != CSZ2_MAGIC {
        return None;
    }
    let n_chunks = u32::from_le_bytes(
        bytes[CSZ2_HEADER_BYTES - 4..CSZ2_HEADER_BYTES]
            .try_into()
            .unwrap(),
    ) as usize;
    let table = CSZ2_HEADER_BYTES..CSZ2_HEADER_BYTES.checked_add(n_chunks.checked_mul(8)?)?;
    if table.end > bytes.len() {
        return None;
    }
    let mut chunks = Vec::with_capacity(n_chunks);
    let mut pos = table.end;
    for i in 0..n_chunks {
        let off = table.start + i * 8;
        let len = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) as usize;
        let end = pos.checked_add(len)?;
        if end > bytes.len() {
            return None;
        }
        chunks.push(pos..end);
        pos = end;
    }
    let parity = if pos == bytes.len() {
        None
    } else if bytes.len() >= pos + 4
        && u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) == CSZP_MAGIC
    {
        Some(pos..bytes.len())
    } else {
        return None;
    };
    Some(Csz2Layout {
        n_chunks,
        table,
        chunks,
        parity,
    })
}

/// Byte map of a CSZ2 container's parity section, for aiming
/// shard-precise faults. All ranges are absolute file offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityLayout {
    /// Data shards per stripe.
    pub k: usize,
    /// Parity shards per stripe.
    pub m: usize,
    /// Bytes per shard.
    pub shard_size: usize,
    /// The protected region (the chunk bodies).
    pub region: Range<usize>,
    /// The whole CSZP section.
    pub section: Range<usize>,
    /// Data shards actually materialized in the region (the all-zero
    /// tail of the last stripe is virtual).
    pub n_data: usize,
    /// Stripe count.
    pub n_stripes: usize,
}

impl ParityLayout {
    /// Stored parity shard count.
    pub fn n_parity(&self) -> usize {
        self.n_stripes * self.m
    }

    /// Absolute byte range of data shard `d` (the last one may be
    /// shorter than `shard_size`).
    pub fn data_shard(&self, d: usize) -> Range<usize> {
        let start = self.region.start + d * self.shard_size;
        start..(start + self.shard_size).min(self.region.end)
    }

    /// Absolute byte range of stored parity shard `p`.
    pub fn parity_shard(&self, p: usize) -> Range<usize> {
        let start = self.section.start
            + CSZP_HEADER_BYTES
            + self.n_data * 8
            + self.n_parity() * 12
            + p * self.shard_size;
        start..start + self.shard_size
    }

    /// Materialized data shards of stripe `s` (global indices).
    pub fn stripe_data(&self, s: usize) -> Range<usize> {
        let start = s * self.k;
        start..(start + self.k).min(self.n_data)
    }
}

/// Parses the parity geometry of a **valid** CSZ2+CSZP container.
/// Returns `None` when there is no parity section or the section does
/// not describe the container consistently.
pub fn parse_parity(bytes: &[u8]) -> Option<ParityLayout> {
    let layout = parse_csz2(bytes)?;
    let section = layout.parity?;
    let s = &bytes[section.clone()];
    if s.len() < CSZP_HEADER_BYTES {
        return None;
    }
    let k = u16::from_le_bytes(s[6..8].try_into().unwrap()) as usize;
    let m = u16::from_le_bytes(s[8..10].try_into().unwrap()) as usize;
    let shard_size = u32::from_le_bytes(s[12..16].try_into().unwrap()) as usize;
    let region_len = u64::from_le_bytes(s[16..24].try_into().unwrap()) as usize;
    let n_stripes = u32::from_le_bytes(s[24..28].try_into().unwrap()) as usize;
    if k == 0 || m == 0 || shard_size == 0 {
        return None;
    }
    let region = layout.table.end..section.start;
    if region.len() != region_len {
        return None;
    }
    let n_data = region_len.div_ceil(shard_size);
    if n_stripes != n_data.div_ceil(k) {
        return None;
    }
    let p = ParityLayout {
        k,
        m,
        shard_size,
        region,
        section,
        n_data,
        n_stripes,
    };
    if p.parity_shard(p.n_parity() - 1).end > bytes.len() {
        return None;
    }
    Some(p)
}

/// The section boundaries of a container: 0, end of header, end of each
/// length-table entry, and end of each chunk. Truncating exactly at (and
/// one byte before/after) these offsets exercises every parser edge.
pub fn section_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut out = vec![0];
    if let Some(layout) = parse_csz2(bytes) {
        out.push(CSZ2_HEADER_BYTES);
        for i in 0..layout.n_chunks {
            out.push(layout.table.start + (i + 1) * 8);
        }
        for c in &layout.chunks {
            out.push(c.end);
        }
        if let Some(p) = &layout.parity {
            out.push(p.start + CSZP_HEADER_BYTES.min(p.len()));
        }
    }
    out.push(bytes.len());
    out.sort_unstable();
    out.dedup();
    out
}

/// Truncates to `at` bytes (clamped).
pub fn truncate(bytes: &[u8], at: usize) -> Vec<u8> {
    bytes[..at.min(bytes.len())].to_vec()
}

/// Flips one bit.
pub fn flip_bit(bytes: &[u8], offset: usize, bit: u8) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if let Some(b) = out.get_mut(offset) {
        *b ^= 1 << (bit % 8);
    }
    out
}

/// Overwrites the little-endian `u64` at `offset` (e.g. a length-table
/// entry) with an inflated value.
pub fn inflate_u64(bytes: &[u8], offset: usize, value: u64) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if offset + 8 <= out.len() {
        out[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }
    out
}

/// Overwrites the little-endian `u32` at `offset` (e.g. the chunk count).
pub fn inflate_u32(bytes: &[u8], offset: usize, value: u32) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if offset + 4 <= out.len() {
        out[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }
    out
}

/// Rebuilds a CSZ2 container with its chunks in `order` (indices into
/// the original chunk list; duplicates and omissions allowed — this one
/// primitive implements reorder, duplicate, and delete). The header's
/// chunk count and the length table are rewritten consistently, so the
/// result is *structurally* valid and probes semantic validation
/// (geometry/tiling checks), not mere framing.
pub fn rebuild_with_chunk_order(bytes: &[u8], order: &[usize]) -> Option<Vec<u8>> {
    let layout = parse_csz2(bytes)?;
    if order.iter().any(|&i| i >= layout.chunks.len()) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len());
    out.extend_from_slice(&bytes[..CSZ2_HEADER_BYTES - 4]);
    out.extend_from_slice(&(order.len() as u32).to_le_bytes());
    for &i in order {
        out.extend_from_slice(&(layout.chunks[i].len() as u64).to_le_bytes());
    }
    for &i in order {
        out.extend_from_slice(&bytes[layout.chunks[i].clone()]);
    }
    // Carry any parity section verbatim: the framing stays valid, and
    // the now-stale shard checksums probe the repair pass's own
    // validation instead of its parser.
    if let Some(p) = &layout.parity {
        out.extend_from_slice(&bytes[p.clone()]);
    }
    Some(out)
}

/// Swaps chunks `i` and `j`.
pub fn reorder_chunks(bytes: &[u8], i: usize, j: usize) -> Option<Vec<u8>> {
    let layout = parse_csz2(bytes)?;
    let mut order: Vec<usize> = (0..layout.chunks.len()).collect();
    if i >= order.len() || j >= order.len() {
        return None;
    }
    order.swap(i, j);
    rebuild_with_chunk_order(bytes, &order)
}

/// Duplicates chunk `i` in place (the container grows by one chunk).
pub fn duplicate_chunk(bytes: &[u8], i: usize) -> Option<Vec<u8>> {
    let layout = parse_csz2(bytes)?;
    if i >= layout.chunks.len() {
        return None;
    }
    let mut order: Vec<usize> = (0..layout.chunks.len()).collect();
    order.insert(i, i);
    rebuild_with_chunk_order(bytes, &order)
}

/// Deletes chunk `i` (the container shrinks by one chunk).
pub fn delete_chunk(bytes: &[u8], i: usize) -> Option<Vec<u8>> {
    let layout = parse_csz2(bytes)?;
    if i >= layout.chunks.len() {
        return None;
    }
    let mut order: Vec<usize> = (0..layout.chunks.len()).collect();
    order.remove(i);
    rebuild_with_chunk_order(bytes, &order)
}

/// One corrupted input from a campaign.
#[derive(Debug, Clone)]
pub struct FaultCase {
    /// Campaign index (replay key together with the seed).
    pub id: usize,
    /// Human-readable description of the mutation.
    pub description: String,
    /// The corrupted bytes.
    pub bytes: Vec<u8>,
}

/// What a parity-aware corruption is expected to do to recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParityExpect {
    /// Every stripe's damage fits its erasure budget: resilient
    /// decompression must be bit-exact and report no data loss.
    Heals,
    /// Some stripe is beyond budget: recovery must not panic, must
    /// report at least one unrepairable stripe, and must fill the
    /// chunks it could not validate.
    DataLoss,
    /// The parity header itself is destroyed while every chunk byte is
    /// intact: the archive must behave as if parity-less and decode
    /// bit-exactly.
    MetadataOnly,
}

/// One corrupted input from a [`parity_campaign`], tagged with the
/// recovery outcome the mutation was engineered to produce.
#[derive(Debug, Clone)]
pub struct ParityCase {
    /// Campaign index (replay key together with the seed).
    pub id: usize,
    /// Human-readable description of the mutation.
    pub description: String,
    /// The corrupted bytes.
    pub bytes: Vec<u8>,
    /// The engineered outcome.
    pub expect: ParityExpect,
}

/// Picks `n` distinct values from `range` (fewer when the range is
/// smaller), sorted.
fn pick_distinct(rng: &mut FaultRng, range: Range<usize>, n: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = range.collect();
    let mut out = Vec::with_capacity(n.min(pool.len()));
    for _ in 0..n.min(pool.len()) {
        out.push(pool.swap_remove(rng.below(pool.len())));
    }
    out.sort_unstable();
    out
}

/// Flips one random bit inside `range`.
fn flip_within(bytes: &mut [u8], range: Range<usize>, rng: &mut FaultRng) {
    let off = range.start + rng.below(range.len());
    bytes[off] ^= 1 << (rng.next_u64() % 8);
}

/// Generates `n` deterministic corruptions of a parity-carrying CSZ2
/// container, each engineered to land on a known side of the erasure
/// budget: within-budget data damage, parity-only damage, mixed damage
/// that still fits, damage one past the budget (pure data and
/// data+parity combined), and parity-header destruction. Every case is
/// tagged with the [`ParityExpect`] outcome the recovery contract
/// promises for it. Returns an empty vec when `base` carries no
/// (consistent) parity section.
pub fn parity_campaign(base: &[u8], seed: u64, n: usize) -> Vec<ParityCase> {
    let Some(p) = parse_parity(base) else {
        return Vec::new();
    };
    let mut rng = FaultRng::new(seed);
    let mut cases = Vec::with_capacity(n);
    for id in 0..n {
        let s = rng.below(p.n_stripes);
        let data = p.stripe_data(s);
        let stripe_parity = s * p.m..(s + 1) * p.m;
        let mut bytes = base.to_vec();
        let (description, expect) = match id % 6 {
            0 => {
                // Data damage within budget: 1..=min(m, |data|) shards.
                let want = 1 + rng.below(p.m.min(data.len()));
                let picked = pick_distinct(&mut rng, data.clone(), want);
                for &d in &picked {
                    flip_within(&mut bytes, p.data_shard(d), &mut rng);
                }
                (
                    format!("stripe {s}: flip data shards {picked:?} (within budget)"),
                    ParityExpect::Heals,
                )
            }
            1 => {
                // Parity-only damage: the payload stays intact, the
                // report must still notice the stripes are not whole.
                let want = 1 + rng.below(p.m);
                let picked = pick_distinct(&mut rng, stripe_parity, want);
                for &q in &picked {
                    flip_within(&mut bytes, p.parity_shard(q), &mut rng);
                }
                (
                    format!("stripe {s}: flip parity shards {picked:?}"),
                    ParityExpect::Heals,
                )
            }
            2 => {
                // Mixed damage that still fits: x parity + y data with
                // x + y <= m (degenerates to data-only when m == 1).
                let x = if p.m > 1 { 1 + rng.below(p.m - 1) } else { 0 };
                let y = 1 + rng.below((p.m - x).min(data.len()));
                let pp = pick_distinct(&mut rng, stripe_parity, x);
                let dd = pick_distinct(&mut rng, data.clone(), y);
                for &q in &pp {
                    flip_within(&mut bytes, p.parity_shard(q), &mut rng);
                }
                for &d in &dd {
                    flip_within(&mut bytes, p.data_shard(d), &mut rng);
                }
                (
                    format!("stripe {s}: flip data {dd:?} + parity {pp:?} (within budget)"),
                    ParityExpect::Heals,
                )
            }
            3 => {
                // One past the budget, pure data where the stripe is
                // wide enough; otherwise all data plus enough parity
                // that the survivors cannot reconstruct.
                if data.len() > p.m {
                    let want = p.m + 1 + rng.below(data.len() - p.m);
                    let picked = pick_distinct(&mut rng, data.clone(), want);
                    for &d in &picked {
                        flip_within(&mut bytes, p.data_shard(d), &mut rng);
                    }
                    (
                        format!("stripe {s}: flip data shards {picked:?} (beyond budget)"),
                        ParityExpect::DataLoss,
                    )
                } else {
                    let q = p.m - data.len() + 1;
                    let pp = pick_distinct(&mut rng, stripe_parity, q);
                    let dd: Vec<usize> = data.clone().collect();
                    for &q in &pp {
                        flip_within(&mut bytes, p.parity_shard(q), &mut rng);
                    }
                    for &d in &dd {
                        flip_within(&mut bytes, p.data_shard(d), &mut rng);
                    }
                    (
                        format!("stripe {s}: flip all data {dd:?} + parity {pp:?} (beyond budget)"),
                        ParityExpect::DataLoss,
                    )
                }
            }
            4 => {
                // Combined beyond budget: x parity + (m - x + 1) data.
                let x_min = (p.m + 1).saturating_sub(data.len()).max(1);
                let x = x_min + rng.below(p.m - x_min + 1);
                let y = p.m - x + 1;
                let pp = pick_distinct(&mut rng, stripe_parity, x);
                let dd = pick_distinct(&mut rng, data.clone(), y);
                for &q in &pp {
                    flip_within(&mut bytes, p.parity_shard(q), &mut rng);
                }
                for &d in &dd {
                    flip_within(&mut bytes, p.data_shard(d), &mut rng);
                }
                (
                    format!("stripe {s}: flip data {dd:?} + parity {pp:?} (beyond budget)"),
                    ParityExpect::DataLoss,
                )
            }
            _ => {
                // Destroy the parity header (all 32 pre-checksum bytes
                // are covered by the header checksum, so any flip is
                // noticed and the section is ignored wholesale).
                let off = p.section.start + rng.below(32);
                bytes[off] ^= 1 << (rng.next_u64() % 8);
                (
                    format!("flip parity-header byte {off}"),
                    ParityExpect::MetadataOnly,
                )
            }
        };
        cases.push(ParityCase {
            id,
            description,
            bytes,
            expect,
        });
    }
    cases
}

/// Generates `n` deterministic corruptions confined to the bodies of
/// the given chunks of a CSZ2 container. Every byte outside
/// `targets` — other chunks, the header, the length table, any parity
/// section — is left bit-identical to `base`, which is what lets a
/// range-read test assert that damage *outside* a requested range is
/// invisible to it. The mix cycles single-bit flips, short flip bursts,
/// and zeroed bytes (never truncation or structural surgery, which
/// would move bytes that are out of scope).
///
/// Returns an empty vec when `base` is not a clean CSZ2 container, when
/// `targets` is empty, names an out-of-range chunk, or only empty
/// chunk bodies.
pub fn targeted_campaign(base: &[u8], seed: u64, n: usize, targets: &[usize]) -> Vec<FaultCase> {
    let Some(layout) = parse_csz2(base) else {
        return Vec::new();
    };
    if targets.is_empty() || targets.iter().any(|&t| t >= layout.chunks.len()) {
        return Vec::new();
    }
    let spans: Vec<Range<usize>> = targets
        .iter()
        .map(|&t| layout.chunks[t].clone())
        .filter(|r| !r.is_empty())
        .collect();
    if spans.is_empty() {
        return Vec::new();
    }
    let mut rng = FaultRng::new(seed);
    let mut cases = Vec::with_capacity(n);
    for id in 0..n {
        let span = spans[rng.below(spans.len())].clone();
        let mut bytes = base.to_vec();
        let mut description = match id % 3 {
            0 => {
                let off = span.start + rng.below(span.len());
                let bit = (rng.next_u64() % 8) as u8;
                bytes[off] ^= 1 << bit;
                format!("flip bit {bit} of byte {off} (chunk span {span:?})")
            }
            1 => {
                let start = span.start + rng.below(span.len());
                for _ in 0..4 {
                    let off = (start + rng.below(16)).min(span.end - 1);
                    bytes[off] ^= 1 << (rng.next_u64() % 8);
                }
                format!("4-bit burst near byte {start} (chunk span {span:?})")
            }
            _ => {
                let off = span.start + rng.below(span.len());
                bytes[off] = 0;
                format!("zero byte {off} (chunk span {span:?})")
            }
        };
        // Paired flips (or zeroing an already-zero byte) can cancel out;
        // force a mutation inside the span so no case is a no-op.
        if bytes == base {
            let off = span.start + id % span.len();
            bytes[off] ^= 0x01;
            description = format!("{description}; degenerate, flip bit 0 of byte {off}");
        }
        cases.push(FaultCase {
            id,
            description,
            bytes,
        });
    }
    cases
}

/// Generates `n` deterministic corruptions of `base`.
///
/// The mix interleaves: truncation at/around every section boundary,
/// seeded random truncations, single- and multi-bit flips across the
/// whole container, length-table and chunk-count inflation, and (for
/// CSZ2 containers) chunk reorder/duplicate/delete surgery. The same
/// `(base, seed, n)` always yields the same cases.
pub fn campaign(base: &[u8], seed: u64, n: usize) -> Vec<FaultCase> {
    let mut rng = FaultRng::new(seed);
    let layout = parse_csz2(base);
    let boundaries = section_boundaries(base);
    let mut cases = Vec::with_capacity(n);
    let mut boundary_cursor = 0usize;
    for id in 0..n {
        let (mut description, mut bytes) = match id % 8 {
            // Boundary truncations first — exact, one short, one long —
            // cycling through every boundary of the container.
            0 => {
                let b = boundaries[boundary_cursor % boundaries.len()];
                boundary_cursor += 1;
                let at = match rng.below(3) {
                    0 => b,
                    1 => b.saturating_sub(1),
                    _ => b + 1,
                }
                // Truncating at (or past) the full length is a no-op;
                // clamp to the one-byte-short case instead.
                .min(base.len().saturating_sub(1));
                (
                    format!("truncate at {at} (boundary {b})"),
                    truncate(base, at),
                )
            }
            1 => {
                let at = if base.is_empty() {
                    0
                } else {
                    rng.below(base.len() + 1)
                };
                (format!("truncate at {at}"), truncate(base, at))
            }
            2 | 3 => {
                let off = if base.is_empty() {
                    0
                } else {
                    rng.below(base.len())
                };
                let bit = (rng.next_u64() % 8) as u8;
                (
                    format!("flip bit {bit} of byte {off}"),
                    flip_bit(base, off, bit),
                )
            }
            4 => {
                // A burst of flips clustered in one region.
                let mut bytes = base.to_vec();
                let mut start = 0;
                if !bytes.is_empty() {
                    start = rng.below(bytes.len());
                    for _ in 0..4 {
                        let off = (start + rng.below(16)).min(bytes.len() - 1);
                        bytes[off] ^= 1 << (rng.next_u64() % 8);
                    }
                }
                (format!("4-bit burst near byte {start}"), bytes)
            }
            5 => match &layout {
                Some(l) if l.n_chunks > 0 => {
                    let entry = rng.below(l.n_chunks);
                    let off = l.table.start + entry * 8;
                    let value = match rng.below(3) {
                        0 => u64::MAX,
                        1 => (base.len() as u64) * 2,
                        _ => rng.next_u64(),
                    };
                    (
                        format!("inflate length-table entry {entry} to {value:#x}"),
                        inflate_u64(base, off, value),
                    )
                }
                _ => {
                    let value = rng.next_u64() as u32;
                    (
                        format!("overwrite chunk count with {value}"),
                        inflate_u32(base, CSZ2_HEADER_BYTES.saturating_sub(4), value),
                    )
                }
            },
            6 => {
                let value = match rng.below(2) {
                    0 => u32::MAX,
                    _ => rng.next_u64() as u32,
                };
                (
                    format!("overwrite chunk count with {value}"),
                    inflate_u32(base, CSZ2_HEADER_BYTES.saturating_sub(4), value),
                )
            }
            _ => match &layout {
                Some(l) if l.n_chunks > 1 => {
                    let i = rng.below(l.n_chunks);
                    let j = rng.below(l.n_chunks);
                    match rng.below(3) {
                        0 => (
                            format!("reorder chunks {i} <-> {j}"),
                            reorder_chunks(base, i, j).unwrap(),
                        ),
                        1 => (
                            format!("duplicate chunk {i}"),
                            duplicate_chunk(base, i).unwrap(),
                        ),
                        _ => (format!("delete chunk {i}"), delete_chunk(base, i).unwrap()),
                    }
                }
                _ => {
                    let off = if base.is_empty() {
                        0
                    } else {
                        rng.below(base.len())
                    };
                    (format!("zero byte {off}"), {
                        let mut b = base.to_vec();
                        if let Some(x) = b.get_mut(off) {
                            *x = 0;
                        }
                        b
                    })
                }
            },
        };
        // Some ops can degenerate into no-ops (paired flips cancelling,
        // swapping byte-identical chunks). A no-op case would silently
        // weaken the campaign, so force a mutation.
        if bytes == base && !bytes.is_empty() {
            let off = id % bytes.len();
            bytes[off] ^= 0x01;
            description = format!("{description}; degenerate, flip bit 0 of byte {off}");
        }
        cases.push(FaultCase {
            id,
            description,
            bytes,
        });
    }
    cases
}

/// Offset of the plan descriptor inside a v1 chunk header: the dtype
/// byte, then the predictor byte, the lossless-stage byte, and three
/// reserved must-be-zero bytes.
pub const PLAN_DESCRIPTOR_OFFSET: usize = 42;

/// Width of the plan descriptor (dtype + predictor + lossless + three
/// reserved bytes).
pub const PLAN_DESCRIPTOR_BYTES: usize = 6;

/// Generates `n` deterministic corruptions that land exclusively inside
/// chunk **plan descriptors** — the dtype/predictor/lossless/reserved
/// bytes at offsets 42..48 of each chunk's v1 header. Each case
/// overwrites exactly one descriptor byte of one chunk with an
/// engineered out-of-range value (a predictor or lossless tag ≥ 2, a
/// dtype tag ≥ 2, or a nonzero reserved byte); every other byte of the
/// container is bit-identical to `base`. A parser honoring the
/// plan-descriptor contract must report a typed malformed fault for the
/// targeted chunk and must never panic.
///
/// Returns an empty vec when `base` is not a clean CSZ2 container or no
/// chunk body is large enough to hold a header.
pub fn plan_descriptor_campaign(base: &[u8], seed: u64, n: usize) -> Vec<FaultCase> {
    let Some(layout) = parse_csz2(base) else {
        return Vec::new();
    };
    let spans: Vec<Range<usize>> = layout
        .chunks
        .iter()
        .filter(|r| r.len() >= PLAN_DESCRIPTOR_OFFSET + PLAN_DESCRIPTOR_BYTES)
        .cloned()
        .collect();
    if spans.is_empty() {
        return Vec::new();
    }
    let mut rng = FaultRng::new(seed);
    let mut cases = Vec::with_capacity(n);
    for id in 0..n {
        let span = spans[rng.below(spans.len())].clone();
        let desc = span.start + PLAN_DESCRIPTOR_OFFSET;
        let mut bytes = base.to_vec();
        let description = match id % 4 {
            0 => {
                let v = 2u8.wrapping_add((rng.next_u64() % 254) as u8);
                bytes[desc + 1] = v;
                format!(
                    "invalid predictor tag {v} at byte {} (chunk span {span:?})",
                    desc + 1
                )
            }
            1 => {
                let v = 2u8.wrapping_add((rng.next_u64() % 254) as u8);
                bytes[desc + 2] = v;
                format!(
                    "invalid lossless tag {v} at byte {} (chunk span {span:?})",
                    desc + 2
                )
            }
            2 => {
                let r = rng.below(3);
                let v = 1u8.wrapping_add((rng.next_u64() % 255) as u8);
                bytes[desc + 3 + r] = v;
                format!(
                    "nonzero reserved plan byte {v} at byte {} (chunk span {span:?})",
                    desc + 3 + r
                )
            }
            _ => {
                let v = 2u8.wrapping_add((rng.next_u64() % 254) as u8);
                bytes[desc] = v;
                format!("invalid dtype tag {v} at byte {desc} (chunk span {span:?})")
            }
        };
        cases.push(FaultCase {
            id,
            description,
            bytes,
        });
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built two-chunk CSZ2-framed container (bodies are opaque
    /// to this crate, so arbitrary filler works).
    fn fake_container(body_a: &[u8], body_b: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CSZ2_MAGIC.to_le_bytes());
        out.extend_from_slice(&2u16.to_le_bytes()); // version
        out.push(1); // rank
        out.push(0); // dtype
        out.extend_from_slice(&[0u8; 24]); // extents
        out.extend_from_slice(&1e-3f64.to_le_bytes()); // eb
        out.extend_from_slice(&1024u64.to_le_bytes()); // chunk target
        out.extend_from_slice(&2u32.to_le_bytes()); // n_chunks
        out.extend_from_slice(&(body_a.len() as u64).to_le_bytes());
        out.extend_from_slice(&(body_b.len() as u64).to_le_bytes());
        out.extend_from_slice(body_a);
        out.extend_from_slice(body_b);
        out
    }

    /// Appends a structurally consistent CSZP section (checksums are
    /// zero — this crate never verifies them) to a fake container.
    fn with_fake_parity(mut c: Vec<u8>, k: u16, m: u16, shard: u32) -> Vec<u8> {
        let layout = parse_csz2(&c).unwrap();
        let region_len = (c.len() - layout.table.end) as u64;
        let n_data = (region_len as usize).div_ceil(shard as usize);
        let n_stripes = n_data.div_ceil(k as usize);
        let n_parity = n_stripes * m as usize;
        c.extend_from_slice(&CSZP_MAGIC.to_le_bytes());
        c.extend_from_slice(&1u16.to_le_bytes()); // version
        c.extend_from_slice(&k.to_le_bytes());
        c.extend_from_slice(&m.to_le_bytes());
        c.extend_from_slice(&0u16.to_le_bytes()); // pad
        c.extend_from_slice(&shard.to_le_bytes());
        c.extend_from_slice(&region_len.to_le_bytes());
        c.extend_from_slice(&(n_stripes as u32).to_le_bytes());
        c.extend_from_slice(&0u32.to_le_bytes()); // pad
        c.extend_from_slice(&0u64.to_le_bytes()); // header fnv (unchecked here)
        c.extend_from_slice(&vec![0u8; n_data * 8 + n_parity * 12]);
        c.extend_from_slice(&vec![0u8; n_parity * shard as usize]);
        c
    }

    #[test]
    fn parity_layout_parses_and_maps_shards() {
        let c = with_fake_parity(fake_container(b"AAAA", b"BBBBBBB"), 2, 1, 4);
        let l = parse_csz2(&c).unwrap();
        let p = parse_parity(&c).unwrap();
        assert_eq!((p.k, p.m, p.shard_size), (2, 1, 4));
        assert_eq!(p.region.len(), 11);
        assert_eq!(p.n_data, 3);
        assert_eq!(p.n_stripes, 2);
        assert_eq!(p.section, l.parity.unwrap());
        // Shards tile the region; the last one is short.
        assert_eq!(p.data_shard(0), p.region.start..p.region.start + 4);
        assert_eq!(p.data_shard(2).len(), 3);
        assert_eq!(p.data_shard(2).end, p.region.end);
        // Stored parity shards end exactly at the file's end.
        assert_eq!(p.parity_shard(p.n_parity() - 1).end, c.len());
        // Tail stripe has one real data shard.
        assert_eq!(p.stripe_data(1), 2..3);
        // Containers without the section parse to no parity.
        assert!(parse_parity(&fake_container(b"AAAA", b"B")).is_none());
        // Truncating inside the section keeps the container framing
        // (the section is opaque at that level) but fails the
        // geometry-consistency check.
        assert!(parse_csz2(&c[..c.len() - 1]).is_some());
        assert!(parse_parity(&c[..c.len() - 1]).is_none());
        // A trailing stub too short to hold the CSZP magic (or trailing
        // non-CSZP garbage) still breaks the framing.
        assert!(parse_csz2(&c[..p.section.start + 2]).is_none());
    }

    #[test]
    fn chunk_surgery_keeps_parity_section() {
        let c = with_fake_parity(fake_container(b"AAAA", b"BBBBBBB"), 2, 1, 4);
        let section = parse_csz2(&c).unwrap().parity.unwrap();
        let swapped = reorder_chunks(&c, 0, 1).unwrap();
        let l = parse_csz2(&swapped).unwrap();
        assert_eq!(&swapped[l.parity.unwrap()], &c[section]);
    }

    #[test]
    fn parity_campaigns_cover_every_expectation_and_replay() {
        let c = with_fake_parity(fake_container(&[0xAA; 40], &[0xBB; 40]), 2, 2, 8);
        let a = parity_campaign(&c, 99, 60);
        let b = parity_campaign(&c, 99, 60);
        assert_eq!(a.len(), 60);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bytes, y.bytes, "case {}", x.id);
            assert_eq!(x.expect, y.expect);
        }
        for want in [
            ParityExpect::Heals,
            ParityExpect::DataLoss,
            ParityExpect::MetadataOnly,
        ] {
            assert!(a.iter().any(|c| c.expect == want), "missing {want:?}");
        }
        // Every case actually mutates, and no parity-less fallback.
        for case in &a {
            assert_ne!(
                case.bytes, c,
                "case {} ({}) is a no-op",
                case.id, case.description
            );
        }
        assert!(parity_campaign(&fake_container(b"A", b"B"), 1, 8).is_empty());
    }

    #[test]
    fn rng_is_deterministic_and_nonzero() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut z = FaultRng::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn layout_parses_round_numbers() {
        let c = fake_container(b"AAAA", b"BBBBBBB");
        let l = parse_csz2(&c).unwrap();
        assert_eq!(l.n_chunks, 2);
        assert_eq!(l.chunks[0].len(), 4);
        assert_eq!(l.chunks[1].len(), 7);
        assert_eq!(l.chunks[1].end, c.len());
        // Truncated containers don't parse.
        assert!(parse_csz2(&c[..c.len() - 1]).is_none());
    }

    #[test]
    fn chunk_surgery_preserves_framing() {
        let c = fake_container(b"AAAA", b"BBBBBBB");
        let swapped = reorder_chunks(&c, 0, 1).unwrap();
        let l = parse_csz2(&swapped).unwrap();
        assert_eq!(&swapped[l.chunks[0].clone()], b"BBBBBBB");
        assert_eq!(&swapped[l.chunks[1].clone()], b"AAAA");

        let duped = duplicate_chunk(&c, 0).unwrap();
        assert_eq!(parse_csz2(&duped).unwrap().n_chunks, 3);

        let deleted = delete_chunk(&c, 1).unwrap();
        let l = parse_csz2(&deleted).unwrap();
        assert_eq!(l.n_chunks, 1);
        assert_eq!(&deleted[l.chunks[0].clone()], b"AAAA");
    }

    #[test]
    fn boundaries_are_sorted_unique_and_cover_ends() {
        let c = fake_container(b"AAAA", b"BBBBBBB");
        let b = section_boundaries(&c);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&c.len()));
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b.contains(&CSZ2_HEADER_BYTES));
    }

    #[test]
    fn campaigns_replay_exactly() {
        let c = fake_container(b"AAAAAAAAAA", b"BBBBBBBBBB");
        let a = campaign(&c, 0xDEAD_BEEF, 64);
        let b = campaign(&c, 0xDEAD_BEEF, 64);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bytes, y.bytes, "case {}", x.id);
            assert_eq!(x.description, y.description);
        }
        // A different seed must differ somewhere.
        let d = campaign(&c, 1, 64);
        assert!(a.iter().zip(&d).any(|(x, y)| x.bytes != y.bytes));
    }

    #[test]
    fn targeted_campaigns_stay_inside_their_chunks() {
        let c = fake_container(&[0xAA; 40], &[0xBB; 40]);
        let layout = parse_csz2(&c).unwrap();
        let cases = targeted_campaign(&c, 13, 60, &[1]);
        assert_eq!(cases.len(), 60);
        let span = layout.chunks[1].clone();
        for case in &cases {
            assert_ne!(
                case.bytes, c,
                "case {} ({}) is a no-op",
                case.id, case.description
            );
            assert_eq!(case.bytes.len(), c.len(), "targeted faults never resize");
            assert_eq!(
                &case.bytes[..span.start],
                &c[..span.start],
                "case {} leaked before the target chunk",
                case.id
            );
            assert_eq!(
                &case.bytes[span.end..],
                &c[span.end..],
                "case {} leaked after the target chunk",
                case.id
            );
        }
        // Replay is exact.
        let again = targeted_campaign(&c, 13, 60, &[1]);
        for (x, y) in cases.iter().zip(&again) {
            assert_eq!(x.bytes, y.bytes, "case {}", x.id);
        }
        // Degenerate inputs yield no cases rather than panicking.
        assert!(targeted_campaign(&c, 1, 8, &[]).is_empty());
        assert!(targeted_campaign(&c, 1, 8, &[2]).is_empty());
        assert!(targeted_campaign(b"not csz2", 1, 8, &[0]).is_empty());
    }

    #[test]
    fn campaign_mutates_every_case() {
        let c = fake_container(b"AAAAAAAAAA", b"BBBBBBBBBB");
        for case in campaign(&c, 7, 200) {
            assert_ne!(
                case.bytes, c,
                "case {} ({}) is a no-op",
                case.id, case.description
            );
        }
    }
}
