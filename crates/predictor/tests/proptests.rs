//! Property-based tests for the prediction-quantization stage.
//!
//! The two load-bearing invariants of the paper:
//! 1. the integer path is exactly lossless (reconstruction returns the
//!    prequantized field bit-for-bit), for every engine;
//! 2. the partial-sum engines agree element-exactly with the coarse
//!    data-dependent reconstruction (the §IV-B equivalence proof).

use cuszp_predictor::{
    construct, prequantize, reconstruct, reconstruct_prequant, Dims, ReconstructEngine, DEFAULT_CAP,
};
use proptest::prelude::*;

/// Generates a bounded but irregular field of the given length.
fn field(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn integer_path_is_lossless_1d(data in field(700), eb in 1e-4f64..1e-1) {
        let dims = Dims::D1(700);
        let qf = construct(&data, dims, eb, DEFAULT_CAP);
        let expect = prequantize(&data, eb);
        for engine in ReconstructEngine::ALL {
            prop_assert_eq!(&reconstruct_prequant(&qf, engine), &expect);
        }
    }

    #[test]
    fn integer_path_is_lossless_2d(data in field(31 * 45), eb in 1e-4f64..1e-1) {
        let dims = Dims::D2 { ny: 31, nx: 45 };
        let qf = construct(&data, dims, eb, DEFAULT_CAP);
        let expect = prequantize(&data, eb);
        for engine in ReconstructEngine::ALL {
            prop_assert_eq!(&reconstruct_prequant(&qf, engine), &expect);
        }
    }

    #[test]
    fn integer_path_is_lossless_3d(data in field(5 * 11 * 13), eb in 1e-4f64..1e-1) {
        let dims = Dims::D3 { nz: 5, ny: 11, nx: 13 };
        let qf = construct(&data, dims, eb, DEFAULT_CAP);
        let expect = prequantize(&data, eb);
        for engine in ReconstructEngine::ALL {
            prop_assert_eq!(&reconstruct_prequant(&qf, engine), &expect);
        }
    }

    #[test]
    fn error_bound_holds(data in field(640), eb in 1e-4f64..1e-1) {
        let dims = Dims::D2 { ny: 20, nx: 32 };
        let qf = construct(&data, dims, eb, DEFAULT_CAP);
        let recon = reconstruct(&qf, ReconstructEngine::FinePartialSum);
        for (o, r) in data.iter().zip(&recon) {
            let slack = eb * (1.0 + 1e-6) + (o.abs() as f64) * f32::EPSILON as f64;
            prop_assert!(((o - r).abs() as f64) <= slack, "{} vs {}", o, r);
        }
    }

    #[test]
    fn outlier_placeholder_is_exactly_the_zero_code(data in field(512), eb in 1e-4f64..1e-2) {
        let dims = Dims::D1(512);
        let qf = construct(&data, dims, eb, DEFAULT_CAP);
        let zero_idx: Vec<u64> = qf.codes.iter().enumerate()
            .filter(|(_, &c)| c == 0).map(|(i, _)| i as u64).collect();
        prop_assert_eq!(zero_idx, qf.codes.iter().enumerate()
            .filter(|(_, &c)| c == 0).map(|(i, _)| i as u64).collect::<Vec<_>>());
        prop_assert_eq!(qf.outliers.indices.len(), qf.outliers.values.len());
        // In-range codes never collide with the placeholder and stay < cap.
        for &c in &qf.codes {
            prop_assert!(c < qf.cap());
        }
    }

    #[test]
    fn smaller_cap_means_no_fewer_outliers(data in field(1024)) {
        let dims = Dims::D1(1024);
        let eb = 1e-3;
        let small = construct(&data, dims, eb, 16);
        let large = construct(&data, dims, eb, 4096);
        prop_assert!(small.outliers.len() >= large.outliers.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interpolation_is_lossless_and_bounded(
        data in prop::collection::vec(-50.0f32..50.0, 1..2000),
        eb in 1e-4f64..1e-1,
    ) {
        let n = data.len();
        let dims = Dims::D1(n);
        let qf = cuszp_predictor::construct_interpolation(&data, dims, eb, DEFAULT_CAP);
        let got = cuszp_predictor::reconstruct_interpolation_prequant(&qf);
        prop_assert_eq!(got, prequantize(&data, eb));
        let floats: Vec<f32> = cuszp_predictor::reconstruct_interpolation(&qf);
        for (o, r) in data.iter().zip(&floats) {
            let slack = eb * (1.0 + 1e-6) + (o.abs() as f64) * f32::EPSILON as f64;
            prop_assert!(((o - r).abs() as f64) <= slack);
        }
    }

    #[test]
    fn regression_is_lossless_for_arbitrary_2d_fields(
        data in prop::collection::vec(-50.0f32..50.0, 20 * 33..=20 * 33),
        eb in 1e-3f64..1e-1,
    ) {
        let dims = Dims::D2 { ny: 20, nx: 33 };
        let (qf, coeffs) = cuszp_predictor::construct_regression(&data, dims, eb, DEFAULT_CAP);
        let got = cuszp_predictor::reconstruct_regression_prequant(&qf, &coeffs);
        prop_assert_eq!(got, prequantize(&data, eb));
    }

    #[test]
    fn general_lorenzo_is_lossless_for_orders_up_to_three(
        data in prop::collection::vec(-20.0f32..20.0, 9 * 14..=9 * 14),
        order in 1u32..=3,
    ) {
        let dims = Dims::D2 { ny: 9, nx: 14 };
        let qf = cuszp_predictor::construct_general(&data, dims, 1e-2, DEFAULT_CAP, order);
        let got = cuszp_predictor::reconstruct_general_prequant(&qf, order);
        prop_assert_eq!(got, prequantize(&data, 1e-2));
    }
}
