//! Per-tile linear-regression predictor — the paper's §VII future-work
//! item ("implement other data prediction methods such as
//! linear-regression-based predictors"), realized the way SZ2 does it:
//! each tile gets a least-squares plane/hyperplane fit, the coefficients
//! are quantized so both sides evaluate the *same* integer prediction,
//! and the residuals go through the usual postquantization.
//!
//! Unlike Lorenzo, regression reconstruction has **no data dependency at
//! all** — every element's prediction comes from the (stored) tile
//! coefficients, so decompression is embarrassingly parallel without even
//! needing the partial-sum identity. The price is the per-tile
//! coefficient overhead and a weaker fit on non-planar data; the
//! `ablation_predictors` bench quantifies the trade per field class.
//!
//! Fitting notes: on a full rectangular tile the centered coordinates are
//! mutually orthogonal, so the least-squares solution decouples into one
//! closed-form slope per axis — no linear system to solve.

use crate::{Dims, OutlierList, QuantField, Scalar};

/// Fixed-point scale for quantized regression coefficients.
const COEFF_SCALE: i64 = 1 << 16;

/// Quantized plane-fit coefficients for one tile:
/// `p(k,j,i) ≈ (a + bx·ddx + by·ddy + bz·ddz) / COEFF_SCALE`
/// with doubled centered coordinates `ddx = 2i − (tw−1)` etc. (the
/// doubling keeps the centered coordinates integral for even tiles; the
/// slopes are fitted per doubled unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileCoeffs {
    /// Mean term, scaled by `COEFF_SCALE`.
    pub a: i64,
    /// Slope along x (per doubled-coordinate unit), scaled by
    /// `COEFF_SCALE`.
    pub bx: i64,
    /// Slope along y, scaled by `COEFF_SCALE`.
    pub by: i64,
    /// Slope along z, scaled by `COEFF_SCALE`.
    pub bz: i64,
}

/// All per-tile coefficients of a field, in tile-raster order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegressionCoeffs {
    /// One entry per tile.
    pub tiles: Vec<TileCoeffs>,
}

impl RegressionCoeffs {
    /// Archive footprint: four 8-byte coefficients per tile (a production
    /// format would narrow these; SZ2 stores 4×f32).
    pub fn storage_bytes(&self) -> usize {
        self.tiles.len() * 32
    }
}

/// Iterates tile origins in raster order for the given dims.
fn tile_origins(dims: Dims) -> Vec<[usize; 3]> {
    let [nz, ny, nx] = dims.extents();
    let [tz, ty, tx] = dims.tile();
    let mut out = Vec::new();
    for k0 in (0..nz).step_by(tz) {
        for j0 in (0..ny).step_by(ty) {
            for i0 in (0..nx).step_by(tx) {
                out.push([k0, j0, i0]);
            }
        }
    }
    out
}

/// Integer prediction from quantized coefficients at tile-local doubled
/// centered coordinates.
#[inline(always)]
fn predict(c: &TileCoeffs, ddz: i64, ddy: i64, ddx: i64) -> i64 {
    // The doubled centered coordinates are integers, so the model
    // evaluates directly: p = a + bx·ddx + by·ddy + bz·ddz (all scaled).
    let num = c.a + c.bx * ddx + c.by * ddy + c.bz * ddz;
    // Round-half-away from zero.
    if num >= 0 {
        (num + COEFF_SCALE / 2) / COEFF_SCALE
    } else {
        -((-num + COEFF_SCALE / 2) / COEFF_SCALE)
    }
}

/// Fits one tile and quantizes the coefficients.
fn fit_tile(dq: &[i64], dims: Dims, origin: [usize; 3]) -> TileCoeffs {
    let [_, ny, nx] = dims.extents();
    let [tz, ty, tx] = dims.tile();
    let [nz_e, ny_e, nx_e] = dims.extents();
    let [k0, j0, i0] = origin;
    let td = tz.min(nz_e - k0);
    let th = ty.min(ny_e - j0);
    let tw = tx.min(nx_e - i0);
    let n = (td * th * tw) as f64;

    // Accumulate in doubled centered coordinates (integers).
    let mut sum = 0f64;
    let mut sx = 0f64;
    let mut sy = 0f64;
    let mut sz = 0f64;
    let mut sxx = 0f64;
    let mut syy = 0f64;
    let mut szz = 0f64;
    for k in 0..td {
        let ddz = (2 * k) as f64 - (td - 1) as f64;
        for j in 0..th {
            let ddy = (2 * j) as f64 - (th - 1) as f64;
            for i in 0..tw {
                let ddx = (2 * i) as f64 - (tw - 1) as f64;
                let v = dq[((k0 + k) * ny + j0 + j) * nx + i0 + i] as f64;
                sum += v;
                sx += v * ddx;
                sy += v * ddy;
                sz += v * ddz;
                sxx += ddx * ddx;
                syy += ddy * ddy;
                szz += ddz * ddz;
            }
        }
    }
    let a = sum / n;
    let bx = if sxx > 0.0 { sx / sxx } else { 0.0 };
    let by = if syy > 0.0 { sy / syy } else { 0.0 };
    let bz = if szz > 0.0 { sz / szz } else { 0.0 };
    let q = |v: f64| (v * COEFF_SCALE as f64).round() as i64;
    TileCoeffs {
        a: q(a),
        bx: q(bx),
        by: q(by),
        bz: q(bz),
    }
}

/// Full regression-predicted construction: prequantize, fit each tile,
/// postquantize the residuals against the quantized-coefficient
/// prediction (so the decompressor reproduces it bit-exactly).
pub fn construct_regression<T: Scalar>(
    data: &[T],
    dims: Dims,
    eb: f64,
    cap: u16,
) -> (QuantField, RegressionCoeffs) {
    assert_eq!(data.len(), dims.len(), "data length must match dims");
    assert!(
        cap >= 4 && cap.is_multiple_of(2),
        "cap must be even and ≥ 4"
    );
    let radius = cap / 2;
    let r = radius as i64;
    let dq = crate::prequantize(data, eb);
    let [_, ny, nx] = dims.extents();
    let [tz, ty, tx] = dims.tile();
    let [nz_e, ny_e, nx_e] = dims.extents();

    let mut codes = vec![0u16; dq.len()];
    let mut outliers = OutlierList::default();
    let mut coeffs = RegressionCoeffs::default();
    for origin in tile_origins(dims) {
        let c = fit_tile(&dq, dims, origin);
        coeffs.tiles.push(c);
        let [k0, j0, i0] = origin;
        let td = tz.min(nz_e - k0);
        let th = ty.min(ny_e - j0);
        let tw = tx.min(nx_e - i0);
        for k in 0..td {
            let ddz = (2 * k) as i64 - (td - 1) as i64;
            for j in 0..th {
                let ddy = (2 * j) as i64 - (th - 1) as i64;
                for i in 0..tw {
                    let ddx = (2 * i) as i64 - (tw - 1) as i64;
                    let flat = ((k0 + k) * ny + j0 + j) * nx + i0 + i;
                    let delta = dq[flat] - predict(&c, ddz, ddy, ddx);
                    if delta > -r && delta < r {
                        codes[flat] = (delta + r) as u16;
                    } else {
                        outliers.indices.push(flat as u64);
                        outliers.values.push(delta + r);
                    }
                }
            }
        }
    }
    // Outliers were collected tile-raster order; re-sort by index so the
    // list matches the Lorenzo path's invariant.
    let mut zipped: Vec<(u64, i64)> = outliers
        .indices
        .iter()
        .copied()
        .zip(outliers.values.iter().copied())
        .collect();
    zipped.sort_unstable_by_key(|&(i, _)| i);
    outliers.indices = zipped.iter().map(|&(i, _)| i).collect();
    outliers.values = zipped.iter().map(|&(_, v)| v).collect();

    (
        QuantField {
            codes,
            outliers,
            radius,
            dims,
            eb,
        },
        coeffs,
    )
}

/// Regression reconstruction: fully parallel, no inter-element
/// dependency — every prediction comes from stored coefficients.
pub fn reconstruct_regression_prequant(qf: &QuantField, coeffs: &RegressionCoeffs) -> Vec<i64> {
    let dims = qf.dims;
    let [_, ny, nx] = dims.extents();
    let [tz, ty, tx] = dims.tile();
    let [nz_e, ny_e, nx_e] = dims.extents();
    let mut out = crate::fuse_codes_and_outliers(qf);
    for (c, origin) in coeffs.tiles.iter().zip(tile_origins(dims)) {
        let [k0, j0, i0] = origin;
        let td = tz.min(nz_e - k0);
        let th = ty.min(ny_e - j0);
        let tw = tx.min(nx_e - i0);
        for k in 0..td {
            let ddz = (2 * k) as i64 - (td - 1) as i64;
            for j in 0..th {
                let ddy = (2 * j) as i64 - (th - 1) as i64;
                for i in 0..tw {
                    let ddx = (2 * i) as i64 - (tw - 1) as i64;
                    let flat = ((k0 + k) * ny + j0 + j) * nx + i0 + i;
                    out[flat] += predict(c, ddz, ddy, ddx);
                }
            }
        }
    }
    out
}

/// Full regression decompression to floats.
pub fn reconstruct_regression<T: Scalar>(qf: &QuantField, coeffs: &RegressionCoeffs) -> Vec<T> {
    let dq = reconstruct_regression_prequant(qf, coeffs);
    crate::dequantize(&dq, qf.eb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prequantize, DEFAULT_CAP};

    fn check_round_trip(data: &[f32], dims: Dims, eb: f64) {
        let (qf, coeffs) = construct_regression(data, dims, eb, DEFAULT_CAP);
        let got = reconstruct_regression_prequant(&qf, &coeffs);
        let expect = prequantize(data, eb);
        assert_eq!(got, expect, "integer path must be lossless");
        let floats: Vec<f32> = reconstruct_regression(&qf, &coeffs);
        for (o, r) in data.iter().zip(&floats) {
            let slack = eb * (1.0 + 1e-6) + (o.abs() as f64) * f32::EPSILON as f64;
            assert!(((o - r).abs() as f64) <= slack, "{o} vs {r}");
        }
    }

    #[test]
    fn round_trip_all_ranks() {
        let f = |n: usize| -> Vec<f32> {
            (0..n)
                .map(|i| (i as f32 * 0.003).sin() * 9.0 + i as f32 * 1e-4)
                .collect()
        };
        check_round_trip(&f(1000), Dims::D1(1000), 1e-3);
        check_round_trip(&f(48 * 80), Dims::D2 { ny: 48, nx: 80 }, 1e-3);
        check_round_trip(
            &f(12 * 20 * 28),
            Dims::D3 {
                nz: 12,
                ny: 20,
                nx: 28,
            },
            1e-3,
        );
    }

    #[test]
    fn planar_data_is_predicted_almost_exactly() {
        // A perfect plane: residuals are pure coefficient-quantization
        // noise, so virtually every code is the zero-error symbol.
        let (ny, nx) = (64usize, 64usize);
        let data: Vec<f32> = (0..ny * nx)
            .map(|t| 5.0 + 0.25 * (t % nx) as f32 + 0.125 * (t / nx) as f32)
            .collect();
        let (qf, _) = construct_regression(&data, Dims::D2 { ny, nx }, 1e-3, DEFAULT_CAP);
        let r = qf.radius;
        let near_zero = qf
            .codes
            .iter()
            .filter(|&&c| c != 0 && (c as i32 - r as i32).abs() <= 1)
            .count();
        assert!(
            near_zero as f64 > 0.99 * qf.codes.len() as f64,
            "plane fit should absorb a plane: {near_zero}/{}",
            qf.codes.len()
        );
        assert!(qf.outliers.is_empty());
    }

    #[test]
    fn regression_beats_lorenzo_on_steep_planes() {
        // A steep gradient: Lorenzo's first difference is a large constant
        // (codes far from the zero symbol, possibly outliers); regression
        // absorbs the slope into coefficients.
        let (ny, nx) = (64usize, 64usize);
        let data: Vec<f32> = (0..ny * nx)
            .map(|t| ((t % nx) as f32) * 2.0 + ((t / nx) as f32) * 1.5)
            .collect();
        let dims = Dims::D2 { ny, nx };
        let eb = 1e-4; // quantum 2e-4 → Lorenzo δ ≈ 10⁴ quanta: outliers
        let lorenzo = crate::construct(&data, dims, eb, DEFAULT_CAP);
        let (regr, _) = construct_regression(&data, dims, eb, DEFAULT_CAP);
        assert!(
            regr.outliers.len() * 10 < lorenzo.outliers.len().max(1),
            "regression {} vs lorenzo {} outliers",
            regr.outliers.len(),
            lorenzo.outliers.len()
        );
    }

    #[test]
    fn coefficient_overhead_is_accounted() {
        let data = vec![1.0f32; 64 * 64];
        let (_, coeffs) = construct_regression(&data, Dims::D2 { ny: 64, nx: 64 }, 1e-3, 1024);
        assert_eq!(coeffs.tiles.len(), 16); // (64/16)²
        assert_eq!(coeffs.storage_bytes(), 16 * 32);
    }

    #[test]
    fn outlier_indices_stay_sorted() {
        let mut data = vec![0.0f32; 40 * 40];
        for (i, x) in data.iter_mut().enumerate() {
            if i % 53 == 0 {
                *x = 1.0e7;
            }
        }
        let (qf, _) = construct_regression(&data, Dims::D2 { ny: 40, nx: 40 }, 1e-4, 1024);
        for w in qf.outliers.indices.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
