//! Lorenzo construction (compression side): prediction + postquantization.
//!
//! Thanks to dual-quantization the prediction reads *prequantized original*
//! values, never reconstructed ones, so every element's quant-code can be
//! computed independently — the kernel is embarrassingly parallel.
//!
//! Tiling: fields are carved into independent tiles (256 / 16×16 / 8×8×8);
//! a predictor neighbor that falls outside the element's tile is taken as
//! zero. Because tiles are axis-aligned with power-of-two edges, "outside
//! the tile" is simply `coordinate % tile_edge == 0`, so no explicit tile
//! bookkeeping is needed.

use crate::{gather_outliers, prequantize, Dims, QuantField, Scalar};

/// First-order Lorenzo prediction for a 1-D element from its in-tile
/// neighbor (`0` at tile starts).
#[inline(always)]
fn predict_1d(dq: &[i64], i: usize, tx: usize) -> i64 {
    if i.is_multiple_of(tx) {
        0
    } else {
        dq[i - 1]
    }
}

/// First-order Lorenzo prediction for a 2-D element.
///
/// `p = d[j−1,i] + d[j,i−1] − d[j−1,i−1]` with out-of-tile terms zeroed.
#[inline(always)]
fn predict_2d(dq: &[i64], j: usize, i: usize, nx: usize, ty: usize, tx: usize) -> i64 {
    let up = !j.is_multiple_of(ty);
    let left = !i.is_multiple_of(tx);
    let idx = j * nx + i;
    let mut p = 0i64;
    if up {
        p += dq[idx - nx];
    }
    if left {
        p += dq[idx - 1];
    }
    if up && left {
        p -= dq[idx - nx - 1];
    }
    p
}

/// First-order Lorenzo prediction for a 3-D element (7-point stencil with
/// alternating signs), out-of-tile terms zeroed.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn predict_3d(
    dq: &[i64],
    k: usize,
    j: usize,
    i: usize,
    ny: usize,
    nx: usize,
    tz: usize,
    ty: usize,
    tx: usize,
) -> i64 {
    let back = !k.is_multiple_of(tz);
    let up = !j.is_multiple_of(ty);
    let left = !i.is_multiple_of(tx);
    let idx = (k * ny + j) * nx + i;
    let sxy = nx; // stride along y
    let sz = ny * nx; // stride along z
    let mut p = 0i64;
    if up {
        p += dq[idx - sxy];
    }
    if left {
        p += dq[idx - 1];
    }
    if back {
        p += dq[idx - sz];
    }
    if up && left {
        p -= dq[idx - sxy - 1];
    }
    if back && up {
        p -= dq[idx - sz - sxy];
    }
    if back && left {
        p -= dq[idx - sz - 1];
    }
    if back && up && left {
        p += dq[idx - sz - sxy - 1];
    }
    p
}

/// Computes the prediction `p` for flat index `flat` given dims and tile.
/// Shared by construction and the outlier gather kernel.
pub(crate) fn predict_at(dq: &[i64], dims: Dims, flat: usize) -> i64 {
    let [_, ty, tx] = dims.tile();
    match dims {
        Dims::D1(_) => predict_1d(dq, flat, tx),
        Dims::D2 { nx, .. } => {
            let j = flat / nx;
            let i = flat % nx;
            predict_2d(dq, j, i, nx, ty, tx)
        }
        Dims::D3 { ny, nx, .. } => {
            let [tz, ty, tx] = dims.tile();
            let i = flat % nx;
            let j = (flat / nx) % ny;
            let k = flat / (nx * ny);
            predict_3d(dq, k, j, i, ny, nx, tz, ty, tx)
        }
    }
}

/// Visits every point's Lorenzo residual `dq[flat] − predicted` in index
/// order without mutating anything — the predictor selector's scoring
/// probe, the exact counterpart of
/// [`crate::interpolation::interpolation_residuals`].
pub fn lorenzo_residuals(dq: &[i64], dims: Dims, mut f: impl FnMut(i64)) {
    assert_eq!(dq.len(), dims.len(), "dq length must match dims");
    for flat in 0..dq.len() {
        f(dq[flat] - predict_at(dq, dims, flat));
    }
}

/// Runs the full prediction-quantization stage over a field.
///
/// `eb` is the **absolute** error bound; `cap` the number of quantization
/// bins (`radius = cap/2`, must be even, `4 ≤ cap ≤ 65534`).
///
/// Returns the quant-codes (with `0` marking outliers), the sparse outlier
/// list, and the parameters needed by decompression.
pub fn construct<T: Scalar>(data: &[T], dims: Dims, eb: f64, cap: u16) -> QuantField {
    assert_eq!(data.len(), dims.len(), "data length must match dims");
    assert!(
        cap >= 4 && cap.is_multiple_of(2),
        "cap must be even and ≥ 4"
    );
    let radius = cap / 2;
    let dq = prequantize(data, eb);
    let codes = construct_codes(&dq, dims, radius);
    let outliers = gather_outliers(&dq, &codes, dims, radius);
    QuantField {
        codes,
        outliers,
        radius,
        dims,
        eb,
    }
}

/// Chunk-aware construction: runs [`construct`] on the slab covering
/// `slow_range` slow-axis units of a `dims`-shaped field.
///
/// In C-order the slab is a contiguous subslice of `data`, so no copy is
/// made; the returned [`QuantField`] describes the slab as a standalone
/// field of the same rank (indices and prediction are slab-local).
pub fn construct_slab<T: Scalar>(
    data: &[T],
    dims: Dims,
    slow_range: std::ops::Range<usize>,
    eb: f64,
    cap: u16,
) -> QuantField {
    assert_eq!(data.len(), dims.len(), "data length must match dims");
    assert!(
        slow_range.start <= slow_range.end && slow_range.end <= dims.slow_extent(),
        "slab range out of bounds"
    );
    let eps = dims.elems_per_slow();
    let slab_dims = dims.slab(slow_range.end - slow_range.start);
    construct(
        &data[slow_range.start * eps..slow_range.end * eps],
        slab_dims,
        eb,
        cap,
    )
}

/// The Lorenzo-construction kernel proper: maps prequantized integers to
/// quant-codes. Outlier positions receive the placeholder `0`; their δ is
/// recovered later by [`gather_outliers`].
///
/// Parallelized over contiguous bands aligned with tile boundaries
/// (1-D: 256-element chunks; 2-D: 16-row bands; 3-D: 8-plane slabs).
pub fn construct_codes(dq: &[i64], dims: Dims, radius: u16) -> Vec<u16> {
    let mut codes = Vec::new();
    construct_codes_into(dq, dims, radius, &mut codes);
    codes
}

/// [`construct_codes`] writing into a caller-owned buffer (resized to the
/// field length) so the pipeline engine can reuse one code arena across
/// chunks instead of allocating per chunk.
pub fn construct_codes_into(dq: &[i64], dims: Dims, radius: u16, codes: &mut Vec<u16>) {
    let n = dims.len();
    assert_eq!(dq.len(), n, "prequant length must match dims");
    let r = radius as i64;
    codes.clear();
    codes.resize(n, 0);
    let [_, ty, tx] = dims.tile();

    match dims {
        Dims::D1(_) => {
            cuszp_parallel::par_chunks_mut(codes, tx, |ci, chunk| {
                let base = ci * tx;
                for (loc, c) in chunk.iter_mut().enumerate() {
                    let i = base + loc;
                    let delta = dq[i] - predict_1d(dq, i, tx);
                    *c = encode_delta(delta, r);
                }
            });
        }
        Dims::D2 { nx, .. } => {
            let band = ty * nx;
            cuszp_parallel::par_chunks_mut(codes, band, |bi, chunk| {
                let j0 = bi * ty;
                for (loc, c) in chunk.iter_mut().enumerate() {
                    let j = j0 + loc / nx;
                    let i = loc % nx;
                    let delta = dq[j * nx + i] - predict_2d(dq, j, i, nx, ty, tx);
                    *c = encode_delta(delta, r);
                }
            });
        }
        Dims::D3 { ny, nx, .. } => {
            let [tz, ty, tx] = dims.tile();
            let slab = tz * ny * nx;
            cuszp_parallel::par_chunks_mut(codes, slab, |si, chunk| {
                let k0 = si * tz;
                let plane = ny * nx;
                for (loc, c) in chunk.iter_mut().enumerate() {
                    let k = k0 + loc / plane;
                    let rem = loc % plane;
                    let j = rem / nx;
                    let i = rem % nx;
                    let delta =
                        dq[(k * ny + j) * nx + i] - predict_3d(dq, k, j, i, ny, nx, tz, ty, tx);
                    *c = encode_delta(delta, r);
                }
            });
        }
    }
}

/// Encodes a prediction error as a quant-code: `δ + r` when `|δ| < r`,
/// else the outlier placeholder `0`.
#[inline(always)]
fn encode_delta(delta: i64, r: i64) -> u16 {
    if delta > -r && delta < r {
        (delta + r) as u16
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_CAP;

    #[test]
    fn constant_field_codes_are_all_radius_after_first() {
        // A constant field: first element of each tile predicts 0 so its δ
        // is the (possibly large) value; interior elements predict exactly.
        let data = vec![1.0f32; 512];
        let qf = construct(&data, Dims::D1(512), 0.01, DEFAULT_CAP);
        let r = qf.radius;
        for (i, &c) in qf.codes.iter().enumerate() {
            if i % 256 == 0 {
                // δ = 50 (1.0 / 0.02), in range → code = r + 50.
                assert_eq!(c, r + 50, "tile-start code at {i}");
            } else {
                assert_eq!(c, r, "interior code at {i}");
            }
        }
        assert!(qf.outliers.is_empty());
    }

    #[test]
    fn linear_ramp_1d_codes_are_constant_increment() {
        // d = i → prequant with 2eb = 1 gives d° = i, δ = 1 inside tiles.
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let qf = construct(&data, Dims::D1(1000), 0.5, DEFAULT_CAP);
        let r = qf.radius;
        for (i, &c) in qf.codes.iter().enumerate() {
            if i % 256 != 0 {
                assert_eq!(c, r + 1);
            }
        }
    }

    #[test]
    fn spike_becomes_outlier() {
        let mut data = vec![0.0f32; 300];
        data[100] = 1.0e6;
        let qf = construct(&data, Dims::D1(300), 1e-3, DEFAULT_CAP);
        assert_eq!(qf.codes[100], 0, "spike code must be the placeholder");
        // The element after the spike predicts from the spike → also huge δ.
        assert_eq!(qf.codes[101], 0);
        assert!(qf.outliers.indices.contains(&100));
        assert!(qf.outliers.indices.contains(&101));
    }

    #[test]
    fn smooth_2d_field_has_no_outliers_and_small_codes() {
        let (ny, nx) = (64, 64);
        let data: Vec<f32> = (0..ny * nx)
            .map(|t| {
                let j = t / nx;
                let i = t % nx;
                ((j as f32) * 0.01 + (i as f32) * 0.02).sin()
            })
            .collect();
        let qf = construct(&data, Dims::D2 { ny, nx }, 1e-2, DEFAULT_CAP);
        assert!(
            qf.outlier_fraction() < 0.02,
            "smooth field should be captured"
        );
    }

    #[test]
    fn codes_zero_only_at_outliers() {
        let mut data = vec![0.5f32; 4096];
        data[777] = 9.0e8;
        let qf = construct(&data, Dims::D2 { ny: 64, nx: 64 }, 1e-4, DEFAULT_CAP);
        let zero_positions: Vec<u64> = qf
            .codes
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(zero_positions, qf.outliers.indices);
    }

    #[test]
    fn predict_3d_corner_uses_no_neighbors() {
        let dq = vec![5i64; 8 * 8 * 8];
        // Element (0,0,0) of a tile predicts 0.
        assert_eq!(predict_3d(&dq, 0, 0, 0, 8, 8, 8, 8, 8), 0);
        // Fully interior element of a constant field predicts the constant:
        // p = 3·5 − 3·5 + 5 = 5.
        assert_eq!(predict_3d(&dq, 1, 1, 1, 8, 8, 8, 8, 8), 5);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn rejects_mismatched_dims() {
        construct(&[0.0; 10], Dims::D1(11), 1e-3, DEFAULT_CAP);
    }
}
