//! Outlier gather (dense→sparse) and scatter (sparse→dense) kernels.
//!
//! In cuSZ these map onto cuSPARSE `dense2sparse` / `sparse2dense`; in the
//! paper's Table VII they are timed as the "gather outlier" and "scatter
//! outlier" subprocedures. Here the gather walks the quant-codes for the
//! placeholder `0`, recomputes the prediction error δ at those positions
//! from the prequantized field, and stores the **pre-biased** value
//! `δ + radius` so decompression can fuse codes and outliers branch-free.

use crate::construct::predict_at;
use crate::{Dims, OutlierList};

/// Collects outliers from a constructed code array.
///
/// `dq` is the prequantized field (needed to recompute δ at placeholder
/// positions); `codes` the output of
/// [`construct_codes`](crate::construct::construct_codes).
///
/// Indices come out strictly increasing. The per-chunk collection runs in
/// parallel; chunk results are concatenated in order.
pub fn gather_outliers(dq: &[i64], codes: &[u16], dims: Dims, radius: u16) -> OutlierList {
    assert_eq!(dq.len(), codes.len(), "prequant/code length mismatch");
    let r = radius as i64;
    // A chunk granularity comfortably larger than a tile keeps the merge
    // list short without starving parallelism.
    let chunk = 64 * 1024;
    let parts = cuszp_parallel::par_map_chunks(codes, chunk, |ci, cs| {
        let base = ci * chunk;
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for (loc, &c) in cs.iter().enumerate() {
            if c == 0 {
                let flat = base + loc;
                let delta = dq[flat] - predict_at(dq, dims, flat);
                idx.push(flat as u64);
                val.push(delta + r);
            }
        }
        (idx, val)
    });
    let mut out = OutlierList::default();
    for (idx, val) in parts {
        out.indices.extend(idx);
        out.values.extend(val);
    }
    out
}

/// Scatters outliers into a dense `q'` buffer: `buf[idx] += value`.
///
/// The buffer is expected to already hold `code − radius` (so placeholder
/// positions hold `−radius`, and adding the pre-biased `δ + radius` leaves
/// exactly `δ`).
pub fn scatter_outliers(buf: &mut [i64], outliers: &OutlierList) {
    for (&i, &v) in outliers.indices.iter().zip(&outliers.values) {
        buf[i as usize] += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::construct_codes;

    #[test]
    fn gather_scatter_round_trip() {
        // A field with huge jumps so almost everything is an outlier.
        let dq: Vec<i64> = (0..2000).map(|i| (i as i64) * 100_000).collect();
        let dims = Dims::D1(2000);
        let radius = 512u16;
        let codes = construct_codes(&dq, dims, radius);
        let outliers = gather_outliers(&dq, &codes, dims, radius);
        assert!(!outliers.is_empty());

        // Fuse: q' = code − r, then scatter.
        let mut q: Vec<i64> = codes.iter().map(|&c| c as i64 - radius as i64).collect();
        scatter_outliers(&mut q, &outliers);

        // Every q'[i] must now equal the true δ at i.
        for i in 0..dq.len() {
            let p = crate::construct::predict_at(&dq, dims, i);
            assert_eq!(q[i], dq[i] - p, "fused δ mismatch at {i}");
        }
    }

    #[test]
    fn gather_indices_strictly_increasing() {
        let dq: Vec<i64> = (0..5000)
            .map(|i| ((i * 2654435761usize) % 10_000_000) as i64)
            .collect();
        let dims = Dims::D1(5000);
        let codes = construct_codes(&dq, dims, 512);
        let o = gather_outliers(&dq, &codes, dims, 512);
        for w in o.indices.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(o.indices.len(), o.values.len());
    }

    #[test]
    fn no_outliers_for_smooth_integers() {
        let dq: Vec<i64> = (0..1000).map(|i| (i % 7) as i64).collect();
        let dims = Dims::D1(1000);
        let codes = construct_codes(&dq, dims, 512);
        let o = gather_outliers(&dq, &codes, dims, 512);
        assert!(o.is_empty());
    }
}
