//! Dual-quantization and first-order Lorenzo prediction — the
//! prediction-quantization stage of cuSZ/cuSZ+ (§IV-A of the paper) and the
//! partial-sum reconstruction of cuSZ+ (§IV-B).
//!
//! # Pipeline
//!
//! Compression (per tile, no inter-tile dependency):
//!
//! 1. **prequant** — `d° = round(d / (2·eb))` integerizes every value; the
//!    reconstruction `d°·2eb` is then within `eb` of the original. This is
//!    the step that removes the loop-carried read-after-write dependency of
//!    classic SZ: prediction afterwards runs on *final* integers.
//! 2. **predict + postquant** — `δ = d° − ℓ(neighbors)` with the
//!    first-order Lorenzo predictor `ℓ`; in-range `δ` becomes the
//!    quant-code `q = δ + r` (`r` = radius), out-of-range `δ` is recorded
//!    as a sparse *outlier* and the code stores the placeholder `0`.
//!
//! Decompression:
//!
//! * **fuse** — `q' = q + outlier − r` (outlier entries are pre-biased so
//!   this is branch-free; see [`OutlierList`]),
//! * **partial-sum** — the paper's key identity: first-order Lorenzo
//!   reconstruction over a tile equals the N-dimensional inclusive prefix
//!   sum of `q'`, computable as N independent 1-D scan passes
//!   ([`reconstruct`]), fully parallel,
//! * **dequant** — `d = d°·2eb`.
//!
//! Three reconstruction engines are provided so the paper's comparison can
//! be reproduced: [`ReconstructEngine::CoarseSerial`] (cuSZ: one worker per
//! tile, serial inside), [`ReconstructEngine::FinePartialSumNaive`]
//! (proof-of-concept scan), and [`ReconstructEngine::FinePartialSum`]
//! (optimized scan with fused outlier injection, the cuSZ+ kernel).

mod construct;
pub mod general;
pub mod interpolation;
mod outlier;
mod quantize;
mod reconstruct;
pub mod regression;
mod scalar;
pub mod stage;

pub use construct::{
    construct, construct_codes, construct_codes_into, construct_slab, lorenzo_residuals,
};
pub use general::{
    construct_general, lorenzo_stencil, reconstruct_general, reconstruct_general_prequant, Tap,
};
pub use interpolation::{
    construct_interpolation, construct_interpolation_codes, interpolation_residuals,
    reconstruct_interpolation, reconstruct_interpolation_prequant,
    reconstruct_interpolation_prequant_into,
};
pub use outlier::{gather_outliers, scatter_outliers};
pub use quantize::{dequantize, dequantize_into, prequantize, prequantize_into};
pub use reconstruct::{
    fuse_codes_and_outliers, fuse_codes_and_outliers_into, reconstruct, reconstruct_in_place,
    reconstruct_into, reconstruct_prequant, ReconstructEngine,
};
pub use regression::{
    construct_regression, reconstruct_regression, reconstruct_regression_prequant,
    RegressionCoeffs, TileCoeffs,
};
pub use scalar::Scalar;
pub use stage::{InterpolationStage, LorenzoStage, PredictorStage};

/// Default number of quantization bins (`cap`); the radius is `cap / 2`.
/// cuSZ uses 1024 bins by default, giving 10-bit quant-codes — hence the
/// "multi-byte" Huffman symbols.
pub const DEFAULT_CAP: u16 = 1024;

/// Tile edge for 1-D fields (paper: 256-element chunks).
pub const TILE_1D: usize = 256;
/// Tile edge for 2-D fields (paper: 16×16 chunks).
pub const TILE_2D: usize = 16;
/// Tile edge for 3-D fields (paper: 8×8×8 chunks).
pub const TILE_3D: usize = 8;

/// Logical dimensions of a field, C-order (last index fastest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dims {
    /// 1-D field of `n` elements.
    D1(usize),
    /// 2-D field, `ny` rows × `nx` columns.
    D2 { ny: usize, nx: usize },
    /// 3-D field, `nz` planes × `ny` rows × `nx` columns.
    D3 { nz: usize, ny: usize, nx: usize },
}

impl Dims {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        match *self {
            Dims::D1(n) => n,
            Dims::D2 { ny, nx } => ny * nx,
            Dims::D3 { nz, ny, nx } => nz * ny * nx,
        }
    }

    /// True when the field holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality (1, 2, or 3).
    pub fn rank(&self) -> usize {
        match self {
            Dims::D1(_) => 1,
            Dims::D2 { .. } => 2,
            Dims::D3 { .. } => 3,
        }
    }

    /// Extents as `[nz, ny, nx]` with leading 1s for lower ranks.
    pub fn extents(&self) -> [usize; 3] {
        match *self {
            Dims::D1(n) => [1, 1, n],
            Dims::D2 { ny, nx } => [1, ny, nx],
            Dims::D3 { nz, ny, nx } => [nz, ny, nx],
        }
    }

    /// Extent along the slowest-varying axis (`n`, `ny`, or `nz`).
    pub fn slow_extent(&self) -> usize {
        match *self {
            Dims::D1(n) => n,
            Dims::D2 { ny, .. } => ny,
            Dims::D3 { nz, .. } => nz,
        }
    }

    /// Elements per slow-axis unit (1, `nx`, or `ny·nx`). In C-order a
    /// slab of whole slow-axis units is a contiguous subslice.
    pub fn elems_per_slow(&self) -> usize {
        match *self {
            Dims::D1(_) => 1,
            Dims::D2 { nx, .. } => nx,
            Dims::D3 { ny, nx, .. } => ny * nx,
        }
    }

    /// Dims of a slab covering `slow_len` slow-axis units of this field
    /// (same rank, same fast extents).
    pub fn slab(&self, slow_len: usize) -> Dims {
        match *self {
            Dims::D1(_) => Dims::D1(slow_len),
            Dims::D2 { nx, .. } => Dims::D2 { ny: slow_len, nx },
            Dims::D3 { ny, nx, .. } => Dims::D3 {
                nz: slow_len,
                ny,
                nx,
            },
        }
    }

    /// The tile shape used for this rank, `[tz, ty, tx]`.
    pub fn tile(&self) -> [usize; 3] {
        match self {
            Dims::D1(_) => [1, 1, TILE_1D],
            Dims::D2 { .. } => [1, TILE_2D, TILE_2D],
            Dims::D3 { .. } => [TILE_3D, TILE_3D, TILE_3D],
        }
    }
}

/// Sparse record of prediction errors that fell outside the quantization
/// range. Values are stored **pre-biased**: `value = δ + radius`, so that
/// decompression can compute `q' = code + outlier − radius` uniformly
/// (codes hold the placeholder `0` at outlier positions) without a branch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutlierList {
    /// Flat element indices, strictly increasing.
    pub indices: Vec<u64>,
    /// Pre-biased values `δ + radius` (can be any i64).
    pub values: Vec<i64>,
}

impl OutlierList {
    /// Number of outliers.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when no outliers were recorded.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Serialized size in bytes (index + value per entry).
    pub fn storage_bytes(&self) -> usize {
        self.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<i64>())
    }
}

/// Output of the prediction-quantization stage: everything decompression
/// needs besides the entropy-coded payload.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantField {
    /// One quant-code per element; `0` marks an outlier position,
    /// in-range codes lie in `1..cap`.
    pub codes: Vec<u16>,
    /// Sparse out-of-range prediction errors.
    pub outliers: OutlierList,
    /// Quantization radius `r = cap / 2`; the "zero error" symbol is `r`.
    pub radius: u16,
    /// Field dimensions.
    pub dims: Dims,
    /// Absolute error bound used for prequantization.
    pub eb: f64,
}

impl QuantField {
    /// Fraction of elements that became outliers.
    pub fn outlier_fraction(&self) -> f64 {
        if self.codes.is_empty() {
            0.0
        } else {
            self.outliers.len() as f64 / self.codes.len() as f64
        }
    }

    /// Number of quantization bins (`2 × radius`).
    pub fn cap(&self) -> u16 {
        self.radius * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_accounting() {
        assert_eq!(Dims::D1(100).len(), 100);
        assert_eq!(Dims::D2 { ny: 4, nx: 5 }.len(), 20);
        assert_eq!(
            Dims::D3 {
                nz: 2,
                ny: 3,
                nx: 4
            }
            .len(),
            24
        );
        assert_eq!(Dims::D1(0).rank(), 1);
        assert_eq!(
            Dims::D3 {
                nz: 1,
                ny: 1,
                nx: 1
            }
            .rank(),
            3
        );
        assert!(Dims::D1(0).is_empty());
        assert!(!Dims::D1(1).is_empty());
    }

    #[test]
    fn extents_pad_with_ones() {
        assert_eq!(Dims::D1(7).extents(), [1, 1, 7]);
        assert_eq!(Dims::D2 { ny: 3, nx: 7 }.extents(), [1, 3, 7]);
        assert_eq!(
            Dims::D3 {
                nz: 2,
                ny: 3,
                nx: 7
            }
            .extents(),
            [2, 3, 7]
        );
    }

    #[test]
    fn tiles_match_paper() {
        assert_eq!(Dims::D1(1).tile(), [1, 1, 256]);
        assert_eq!(Dims::D2 { ny: 1, nx: 1 }.tile(), [1, 16, 16]);
        assert_eq!(
            Dims::D3 {
                nz: 1,
                ny: 1,
                nx: 1
            }
            .tile(),
            [8, 8, 8]
        );
    }

    #[test]
    fn outlier_list_storage() {
        let o = OutlierList {
            indices: vec![1, 5],
            values: vec![100, -100],
        };
        assert_eq!(o.len(), 2);
        assert!(!o.is_empty());
        assert_eq!(o.storage_bytes(), 32);
    }
}
