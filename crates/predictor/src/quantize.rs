//! Prequantization and dequantization (the two float↔integer crossings).
//!
//! `prequant`: `d° = round(d / (2·eb))` — after this single rounding the
//! whole pipeline is exact integer arithmetic, which is what licenses the
//! reordering of additions in the partial-sum reconstruction (integer `+`
//! is associative and commutative; float `+` is not).
//!
//! `dequant`: `d = d° · (2·eb)` — reintroduces at most `eb` of error.

use crate::Scalar;

/// Prequantizes a field: `out[i] = round(data[i] / (2·eb))` as `i64`.
///
/// Panics if `eb <= 0` or not finite. Generic over `f32`/`f64`.
pub fn prequantize<T: Scalar>(data: &[T], eb: f64) -> Vec<i64> {
    let mut out = vec![0i64; data.len()];
    prequantize_into(data, eb, &mut out);
    out
}

/// Prequantizes into a caller-provided buffer (hot-loop variant).
///
/// Panics if `eb <= 0`, `eb` is not finite, or lengths differ.
pub fn prequantize_into<T: Scalar>(data: &[T], eb: f64, out: &mut [i64]) {
    assert!(
        eb.is_finite() && eb > 0.0,
        "error bound must be positive and finite"
    );
    assert_eq!(data.len(), out.len(), "buffer length mismatch");
    let inv = 1.0 / (2.0 * eb);
    cuszp_parallel::par_zip_mut(out, data, |o, &d| {
        *o = (d.to_f64() * inv).round() as i64;
    });
}

/// Dequantizes prequantized integers back to floats: `d = d° · 2·eb`.
pub fn dequantize<T: Scalar>(prequant: &[i64], eb: f64) -> Vec<T> {
    let mut out = vec![T::from_f64(0.0); prequant.len()];
    dequantize_into(prequant, eb, &mut out);
    out
}

/// Dequantizes into a caller-provided buffer — typically one slab of a
/// larger field's output, so chunked decompression writes in place.
///
/// Panics if `eb <= 0`, `eb` is not finite, or lengths differ.
pub fn dequantize_into<T: Scalar>(prequant: &[i64], eb: f64, out: &mut [T]) {
    assert!(
        eb.is_finite() && eb > 0.0,
        "error bound must be positive and finite"
    );
    assert_eq!(prequant.len(), out.len(), "buffer length mismatch");
    let scale = 2.0 * eb;
    cuszp_parallel::par_zip_mut(out, prequant, |o, &q| *o = T::from_f64(q as f64 * scale));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prequant_dequant_respects_bound() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.137).sin() * 40.0).collect();
        for eb in [1e-1, 1e-2, 1e-3] {
            let q = prequantize(&data, eb);
            let d: Vec<f32> = dequantize(&q, eb);
            for (o, r) in data.iter().zip(&d) {
                assert!(
                    (o - r).abs() as f64 <= eb * (1.0 + 1e-6),
                    "bound {eb} violated: {o} vs {r}"
                );
            }
        }
    }

    #[test]
    fn prequant_rounds_to_nearest() {
        // 2eb = 1.0 — prequant is plain rounding.
        let q = prequantize(&[0.49, 0.51, -0.49, -0.51, 1.5], 0.5);
        assert_eq!(q, vec![0, 1, 0, -1, 2]);
    }

    #[test]
    fn zero_field_is_all_zero() {
        let q = prequantize(&[0.0; 64], 1e-3);
        assert!(q.iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_eb() {
        prequantize(&[1.0], 0.0);
    }

    #[test]
    fn large_magnitudes_survive() {
        // Values far from zero with a small bound — exercises the i64 range.
        let data = vec![3.0e7f32, -3.0e7];
        let q = prequantize(&data, 1e-3);
        let d: Vec<f32> = dequantize(&q, 1e-3);
        for (o, r) in data.iter().zip(&d) {
            // f32 has ~7 significant digits at 3e7, so the quantizer cannot
            // do better than the representation; allow 4 ulps of 3e7.
            assert!((o - r).abs() <= 8.0, "{o} vs {r}");
        }
    }
}
