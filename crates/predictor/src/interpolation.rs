//! Multi-level interpolation predictor — the direction the paper's
//! related work points to (Zhao et al., "dynamic spline interpolation",
//! ICDE'21, the paper's reference 19) and the successor the SZ line adopted (SZ3 / cuSZ-i).
//!
//! The field is traversed coarse-to-fine: at each level, grid points at
//! stride `s` are predicted from the already-known points at stride `2s`
//! — cubic 4-point interpolation in the interior, linear at edges — one
//! axis pass at a time (z, then y, then x, as SZ3 orders them). Thanks to dual-quantization the "already-known"
//! values during compression are exactly the prequantized originals —
//! identical to what decompression reconstructs — so both sides run the
//! same dependency pattern and within a level every point is independent
//! (GPU-friendly, like the partial-sum reconstruction).
//!
//! Interpolation typically beats Lorenzo on very smooth fields (it uses
//! longer-range structure) and loses on noisy ones (its stencil spans
//! farther) — the trade `ablation_predictors` quantifies.

use crate::{Dims, OutlierList, QuantField, Scalar};

/// Rounded average of two integers (round half away from zero).
#[inline(always)]
fn lerp2(a: i64, b: i64) -> i64 {
    let s = a + b;
    if s >= 0 {
        (s + 1) / 2
    } else {
        -((-s + 1) / 2)
    }
}

/// 4-point cubic interpolation of the midpoint between `b` and `c`, with
/// outer neighbors `a` and `d` (SZ3's default spline weights):
/// `p = (−a + 9b + 9c − d) / 16`, rounded half away from zero.
#[inline(always)]
fn cubic4(a: i64, b: i64, c: i64, d: i64) -> i64 {
    let num = -a + 9 * (b + c) - d;
    if num >= 0 {
        (num + 8) / 16
    } else {
        -((-num + 8) / 16)
    }
}

/// The interpolation traversal: visits every grid point exactly once in
/// coarse-to-fine order and hands `(flat_index, predicted_value,
/// current_value)` to the callback, which must return the *final* integer
/// value at that point (the same value both compressor and decompressor
/// settle on). The returned value is written back into `known`.
///
/// `known` is the working array. Predictions only ever read
/// already-visited (coarser-grid) entries, so the same buffer can serve
/// as both input and output: construction runs directly over the
/// prequantized field (the visit returns `current` unchanged), and
/// reconstruction runs over the fused-delta buffer (the visit returns
/// `predicted + current`, overwriting each delta with its final value
/// exactly when it is visited).
fn traverse<F>(known: &mut [i64], dims: Dims, mut visit: F)
where
    F: FnMut(usize, i64, i64) -> i64,
{
    let [nz, ny, nx] = dims.extents();
    let max_extent = nx.max(ny).max(nz);
    if max_extent == 0 {
        return;
    }
    // Top stride: smallest power of two ≥ max extent.
    let mut top = 1usize;
    while top < max_extent {
        top <<= 1;
    }
    // The root point (0,0,0) is predicted as 0.
    let root = visit(0, 0, known[0]);
    known[0] = root;

    let idx = |k: usize, j: usize, i: usize| (k * ny + j) * nx + i;
    let mut s2 = top; // parent stride
    while s2 >= 2 {
        let s = s2 / 2;
        // Per-axis predictor: cubic when both outer neighbors exist on the
        // coarser grid, linear at interior edges, copy at the boundary.
        macro_rules! axis_predict {
            ($pos:expr, $extent:expr, $at:expr) => {{
                let m = $pos;
                let prev = $at(m - s);
                if m + s < $extent {
                    if m >= 3 * s && m + 3 * s < $extent {
                        cubic4($at(m - 3 * s), prev, $at(m + s), $at(m + 3 * s))
                    } else {
                        lerp2(prev, $at(m + s))
                    }
                } else {
                    prev
                }
            }};
        }
        // Pass 1: refine along z at (z ≡ s mod 2s, y ≡ 0 mod 2s, x ≡ 0 mod 2s).
        if nz > 1 {
            for k in (s..nz).step_by(s2) {
                for j in (0..ny).step_by(s2) {
                    for i in (0..nx).step_by(s2) {
                        let p = axis_predict!(k, nz, |z| known[idx(z, j, i)]);
                        let v = visit(idx(k, j, i), p, known[idx(k, j, i)]);
                        known[idx(k, j, i)] = v;
                    }
                }
            }
        }
        // Pass 2: refine along y at (z ≡ 0 mod s, y ≡ s mod 2s, x ≡ 0 mod 2s).
        if ny > 1 {
            for k in (0..nz).step_by(s) {
                for j in (s..ny).step_by(s2) {
                    for i in (0..nx).step_by(s2) {
                        let p = axis_predict!(j, ny, |y| known[idx(k, y, i)]);
                        let v = visit(idx(k, j, i), p, known[idx(k, j, i)]);
                        known[idx(k, j, i)] = v;
                    }
                }
            }
        }
        // Pass 3: refine along x at (z, y ≡ 0 mod s, x ≡ s mod 2s).
        for k in (0..nz).step_by(s) {
            for j in (0..ny).step_by(s) {
                for i in (s..nx).step_by(s2) {
                    let p = axis_predict!(i, nx, |x| known[idx(k, j, x)]);
                    let v = visit(idx(k, j, i), p, known[idx(k, j, i)]);
                    known[idx(k, j, i)] = v;
                }
            }
        }
        s2 = s;
    }
}

/// Interpolation postquantization over an already-prequantized field,
/// writing quant-codes into a caller-owned arena. `dq` doubles as the
/// traversal's known array — every visit returns the prequantized value
/// unchanged (dual-quant), so the field is preserved — and `codes` is
/// cleared and zero-filled first so outlier positions keep the
/// placeholder `0`. Returns the out-of-range residuals, index-sorted.
pub fn construct_interpolation_codes(
    dq: &mut [i64],
    dims: Dims,
    radius: u16,
    codes: &mut Vec<u16>,
) -> OutlierList {
    assert_eq!(dq.len(), dims.len(), "dq length must match dims");
    let r = radius as i64;
    codes.clear();
    codes.resize(dq.len(), 0);
    let mut outliers = OutlierList::default();
    if dq.is_empty() {
        return outliers;
    }
    traverse(dq, dims, |flat, p, cur| {
        let delta = cur - p;
        if delta > -r && delta < r {
            codes[flat] = (delta + r) as u16;
        } else {
            outliers.indices.push(flat as u64);
            outliers.values.push(delta + r);
        }
        // Dual-quant: the known value is the exact prequantized original.
        cur
    });

    // Traversal order is coarse-to-fine, not index order; restore the
    // sorted-index invariant of the outlier list.
    let mut zipped: Vec<(u64, i64)> = outliers
        .indices
        .iter()
        .copied()
        .zip(outliers.values.iter().copied())
        .collect();
    zipped.sort_unstable_by_key(|&(i, _)| i);
    outliers.indices = zipped.iter().map(|&(i, _)| i).collect();
    outliers.values = zipped.iter().map(|&(_, v)| v).collect();
    outliers
}

/// Interpolation-predicted construction.
pub fn construct_interpolation<T: Scalar>(data: &[T], dims: Dims, eb: f64, cap: u16) -> QuantField {
    assert_eq!(data.len(), dims.len(), "data length must match dims");
    assert!(
        cap >= 4 && cap.is_multiple_of(2),
        "cap must be even and ≥ 4"
    );
    let radius = cap / 2;
    let mut dq = crate::prequantize(data, eb);
    let mut codes = Vec::new();
    let outliers = construct_interpolation_codes(&mut dq, dims, radius, &mut codes);
    QuantField {
        codes,
        outliers,
        radius,
        dims,
        eb,
    }
}

/// Interpolation reconstruction to prequantized integers, writing into a
/// caller-owned arena. `out` is first filled with the fused deltas and
/// then refined in place: the traversal overwrites each delta with its
/// final value exactly when it is visited, and predictions only read
/// already-visited entries, so one buffer serves as both.
pub fn reconstruct_interpolation_prequant_into(
    codes: &[u16],
    outliers: &OutlierList,
    radius: u16,
    dims: Dims,
    out: &mut Vec<i64>,
) {
    crate::fuse_codes_and_outliers_into(codes, outliers, radius, out);
    if out.is_empty() {
        return;
    }
    traverse(out, dims, |_flat, p, cur| p + cur);
}

/// Interpolation reconstruction to prequantized integers.
pub fn reconstruct_interpolation_prequant(qf: &QuantField) -> Vec<i64> {
    let mut out = Vec::new();
    reconstruct_interpolation_prequant_into(&qf.codes, &qf.outliers, qf.radius, qf.dims, &mut out);
    out
}

/// Full interpolation decompression.
pub fn reconstruct_interpolation<T: Scalar>(qf: &QuantField) -> Vec<T> {
    let dq = reconstruct_interpolation_prequant(qf);
    crate::dequantize(&dq, qf.eb)
}

/// Visits every point's interpolation residual `value − predicted` in
/// traversal order without mutating anything — the selector's scoring
/// probe. Copies `dq` into a scratch known-array internally, so callers
/// should hand in a bounded sample, not the whole field.
pub fn interpolation_residuals(dq: &[i64], dims: Dims, mut f: impl FnMut(i64)) {
    assert_eq!(dq.len(), dims.len(), "dq length must match dims");
    if dq.is_empty() {
        return;
    }
    let mut known = dq.to_vec();
    traverse(&mut known, dims, |_flat, p, cur| {
        f(cur - p);
        cur
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prequantize, DEFAULT_CAP};

    fn check_round_trip(data: &[f32], dims: Dims, eb: f64) {
        let qf = construct_interpolation(data, dims, eb, DEFAULT_CAP);
        let got = reconstruct_interpolation_prequant(&qf);
        let expect = prequantize(data, eb);
        assert_eq!(got, expect, "integer path must be lossless");
        let floats: Vec<f32> = reconstruct_interpolation(&qf);
        for (o, r) in data.iter().zip(&floats) {
            let slack = eb * (1.0 + 1e-6) + (o.abs() as f64) * f32::EPSILON as f64;
            assert!(((o - r).abs() as f64) <= slack, "{o} vs {r}");
        }
    }

    #[test]
    fn round_trip_all_ranks_and_ragged_sizes() {
        let f = |n: usize| -> Vec<f32> {
            (0..n)
                .map(|i| (i as f32 * 0.004).sin() * 8.0 + (i as f32 * 0.0009).cos())
                .collect()
        };
        check_round_trip(&f(1), Dims::D1(1), 1e-3);
        check_round_trip(&f(1000), Dims::D1(1000), 1e-3);
        check_round_trip(&f(1024), Dims::D1(1024), 1e-3);
        check_round_trip(&f(48 * 80), Dims::D2 { ny: 48, nx: 80 }, 1e-3);
        check_round_trip(&f(33 * 47), Dims::D2 { ny: 33, nx: 47 }, 1e-2);
        check_round_trip(
            &f(12 * 20 * 28),
            Dims::D3 {
                nz: 12,
                ny: 20,
                nx: 28,
            },
            1e-3,
        );
        check_round_trip(
            &f(16 * 16 * 16),
            Dims::D3 {
                nz: 16,
                ny: 16,
                nx: 16,
            },
            1e-4,
        );
    }

    #[test]
    fn every_point_visited_exactly_once() {
        let dims = Dims::D3 {
            nz: 9,
            ny: 13,
            nx: 17,
        };
        let mut seen = vec![0u32; dims.len()];
        let mut known = vec![0i64; dims.len()];
        traverse(&mut known, dims, |flat, _p, _cur| {
            seen[flat] += 1;
            0
        });
        assert!(seen.iter().all(|&c| c == 1), "coverage: {seen:?}");
    }

    #[test]
    fn linear_data_is_interpolated_exactly() {
        // On a linear ramp every midpoint interpolation is exact, so all
        // codes are the zero-error symbol except the sparse boundary/root
        // extrapolations.
        let n = 1024;
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let qf = construct_interpolation(&data, Dims::D1(n), 0.5, 4096);
        let r = 2048u16;
        let nonzero = qf.codes.iter().filter(|&&c| c != r && c != 0).count() + qf.outliers.len();
        // Root + the right-edge extrapolation chain: O(log n) points.
        assert!(nonzero <= 16, "only boundary points may miss: {nonzero}");
    }

    #[test]
    fn interpolation_beats_lorenzo_on_very_smooth_3d_data() {
        // The SZ3 story: long-range smooth structure favors interpolation.
        let (nz, ny, nx) = (32usize, 32usize, 32usize);
        let data: Vec<f32> = (0..nz * ny * nx)
            .map(|t| {
                let i = (t % nx) as f32 / nx as f32;
                let j = ((t / nx) % ny) as f32 / ny as f32;
                let k = (t / nx / ny) as f32 / nz as f32;
                ((i * 2.1).sin() + (j * 1.7).cos() + (k * 1.3).sin()) * 100.0
            })
            .collect();
        let dims = Dims::D3 { nz, ny, nx };
        let eb = 1e-4 * 400.0; // tight relative bound
        let lorenzo = crate::construct(&data, dims, eb, DEFAULT_CAP);
        let interp = construct_interpolation(&data, dims, eb, DEFAULT_CAP);
        let entropy = |qf: &QuantField| {
            let mut hist = std::collections::HashMap::new();
            for &c in &qf.codes {
                *hist.entry(c).or_insert(0u32) += 1;
            }
            let n = qf.codes.len() as f64;
            -hist
                .values()
                .map(|&c| {
                    let p = c as f64 / n;
                    p * p.log2()
                })
                .sum::<f64>()
        };
        let (hl, hi) = (entropy(&lorenzo), entropy(&interp));
        assert!(
            hi < hl,
            "interpolation codes should carry less entropy: {hi:.3} vs {hl:.3} bits"
        );
    }
}
