//! The general-form Lorenzo predictor of arbitrary order (§IV-A.1b).
//!
//! Tao et al. give the order-`n`, dimension-`m` Lorenzo predictor as
//!
//! ```text
//! p(x) = Σ_{k ≠ 0, 0 ≤ k_j ≤ n}  [ Π_j (−1)^{k_j+1} · C(n, k_j) ] · d[x − k]
//! ```
//!
//! whose coefficients sum to exactly 1 (the property the paper leans on:
//! with dual-quantization the whole computation is closed over the
//! integers, so any evaluation order is exact). Order 1 specializes to
//! the first-order predictors in `construct.rs`; higher orders use a
//! deeper neighborhood and can predict curvature.
//!
//! Reconstruction for orders > 1 is *not* a partial-sum (the paper's
//! identity is first-order-specific), so the general path reconstructs
//! with the data-dependent sequential engine. This module exists to
//! (a) verify the specialized first-order kernels against the closed
//! form and (b) provide the higher-order option the SZ line supports.

use crate::{Dims, OutlierList, QuantField, Scalar};

/// Binomial coefficient C(n, k) for the small orders involved.
fn binom(n: u32, k: u32) -> i64 {
    if k > n {
        return 0;
    }
    let mut num = 1i64;
    let mut den = 1i64;
    for i in 0..k as i64 {
        num *= n as i64 - i;
        den *= i + 1;
    }
    num / den
}

/// One predictor tap: offset (per axis) and integer coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tap {
    /// Offsets `[dz, dy, dx]` (all ≥ 0; the tap reads `x − offset`).
    pub offset: [usize; 3],
    /// Signed integer coefficient.
    pub coeff: i64,
}

/// Builds the general Lorenzo stencil of the given order for a rank.
///
/// Returns every tap with a non-zero coefficient, excluding `k = 0`
/// (the predicted point itself).
pub fn lorenzo_stencil(order: u32, rank: usize) -> Vec<Tap> {
    assert!((1..=3).contains(&rank), "rank must be 1..=3");
    assert!((1..=4).contains(&order), "order must be 1..=4");
    let axis_range = |active: bool| if active { order as usize + 1 } else { 1 };
    let mut taps = Vec::new();
    for kz in 0..axis_range(rank >= 3) {
        for ky in 0..axis_range(rank >= 2) {
            for kx in 0..axis_range(true) {
                if kz == 0 && ky == 0 && kx == 0 {
                    continue;
                }
                // From p = [1 − Π_j (1 − B_j)^n] d: the tap at offset k
                // carries (−1)^{Σ k_j + 1} · Π_j C(n, k_j).
                let mut coeff = 1i64;
                for &k in &[kz, ky, kx] {
                    coeff *= binom(order, k as u32);
                }
                if (kz + ky + kx + 1) % 2 != 0 {
                    coeff = -coeff;
                }
                if coeff != 0 {
                    taps.push(Tap {
                        offset: [kz, ky, kx],
                        coeff,
                    });
                }
            }
        }
    }
    taps
}

/// The defining property: stencil coefficients sum to 1.
pub fn stencil_coefficient_sum(taps: &[Tap]) -> i64 {
    taps.iter().map(|t| t.coeff).sum()
}

/// Predicts one element from already-known integer values using the
/// stencil; out-of-tile / out-of-bounds taps contribute zero.
fn predict_with_stencil(dq: &[i64], dims: Dims, taps: &[Tap], k: usize, j: usize, i: usize) -> i64 {
    let [_, ny, nx] = dims.extents();
    let [tz, ty, tx] = dims.tile();
    let mut p = 0i64;
    for t in taps {
        let [dz, dy, dx] = t.offset;
        // A tap is valid only if it stays inside the element's tile
        // (tile-relative coordinates must not go negative).
        if k % tz < dz || j % ty < dy || i % tx < dx {
            continue;
        }
        let idx = ((k - dz) * ny + (j - dy)) * nx + (i - dx);
        p += t.coeff * dq[idx];
    }
    p
}

/// Full general-order construction: prequantize, predict with the
/// order-`order` stencil, postquantize. Order 1 must agree exactly with
/// [`construct`](crate::construct).
pub fn construct_general<T: Scalar>(
    data: &[T],
    dims: Dims,
    eb: f64,
    cap: u16,
    order: u32,
) -> QuantField {
    assert_eq!(data.len(), dims.len(), "data length must match dims");
    assert!(
        cap >= 4 && cap.is_multiple_of(2),
        "cap must be even and ≥ 4"
    );
    let radius = cap / 2;
    let r = radius as i64;
    let dq = crate::prequantize(data, eb);
    let taps = lorenzo_stencil(order, dims.rank());
    let [_, ny, nx] = dims.extents();

    let mut codes = vec![0u16; dq.len()];
    let mut outliers = OutlierList::default();
    for (flat, c) in codes.iter_mut().enumerate() {
        let i = flat % nx;
        let j = (flat / nx) % ny;
        let k = flat / (nx * ny);
        let delta = dq[flat] - predict_with_stencil(&dq, dims, &taps, k, j, i);
        if delta > -r && delta < r {
            *c = (delta + r) as u16;
        } else {
            outliers.indices.push(flat as u64);
            outliers.values.push(delta + r);
        }
    }
    QuantField {
        codes,
        outliers,
        radius,
        dims,
        eb,
    }
}

/// Sequential reconstruction valid for any order (the general analog of
/// the coarse engine): rebuilds each value from its already-reconstructed
/// stencil neighborhood.
pub fn reconstruct_general_prequant(qf: &QuantField, order: u32) -> Vec<i64> {
    let taps = lorenzo_stencil(order, qf.dims.rank());
    let [_, ny, nx] = qf.dims.extents();
    let mut out = crate::fuse_codes_and_outliers(qf);
    for flat in 0..out.len() {
        let i = flat % nx;
        let j = (flat / nx) % ny;
        let k = flat / (nx * ny);
        out[flat] += predict_with_stencil(&out, qf.dims, &taps, k, j, i);
    }
    out
}

/// Full general-order decompression to floats.
pub fn reconstruct_general<T: Scalar>(qf: &QuantField, order: u32) -> Vec<T> {
    let dq = reconstruct_general_prequant(qf, order);
    crate::dequantize(&dq, qf.eb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{construct, prequantize, DEFAULT_CAP};

    #[test]
    fn binomials() {
        assert_eq!(binom(1, 1), 1);
        assert_eq!(binom(2, 1), 2);
        assert_eq!(binom(3, 2), 3);
        assert_eq!(binom(4, 2), 6);
        assert_eq!(binom(2, 3), 0);
    }

    #[test]
    fn coefficients_sum_to_one_for_all_orders_and_ranks() {
        // The paper's §IV-A.1b: "throughout the prediction, coefficients
        // sum to 1".
        for order in 1..=4u32 {
            for rank in 1..=3usize {
                let taps = lorenzo_stencil(order, rank);
                assert_eq!(
                    stencil_coefficient_sum(&taps),
                    1,
                    "order {order} rank {rank}"
                );
            }
        }
    }

    #[test]
    fn first_order_stencil_matches_the_classic_formulas() {
        // 2-D order 1: +up +left −upleft.
        let taps = lorenzo_stencil(1, 2);
        let find = |off: [usize; 3]| taps.iter().find(|t| t.offset == off).map(|t| t.coeff);
        assert_eq!(find([0, 1, 0]), Some(1));
        assert_eq!(find([0, 0, 1]), Some(1));
        assert_eq!(find([0, 1, 1]), Some(-1));
        assert_eq!(taps.len(), 3);
        // 3-D order 1: the 7-point alternating stencil.
        let taps = lorenzo_stencil(1, 3);
        assert_eq!(taps.len(), 7);
        let find = |off: [usize; 3]| taps.iter().find(|t| t.offset == off).map(|t| t.coeff);
        assert_eq!(find([1, 1, 1]), Some(1));
        assert_eq!(find([1, 0, 0]), Some(1));
        assert_eq!(find([1, 1, 0]), Some(-1));
    }

    #[test]
    fn order_one_general_equals_specialized_construct() {
        let data: Vec<f32> = (0..24 * 36)
            .map(|t| {
                let j = (t / 36) as f32;
                let i = (t % 36) as f32;
                (j * 0.11).sin() * (i * 0.07).cos() * 9.0
            })
            .collect();
        let dims = Dims::D2 { ny: 24, nx: 36 };
        let special = construct(&data, dims, 1e-3, DEFAULT_CAP);
        let general = construct_general(&data, dims, 1e-3, DEFAULT_CAP, 1);
        assert_eq!(special.codes, general.codes);
        assert_eq!(special.outliers, general.outliers);
    }

    #[test]
    fn general_round_trip_every_order() {
        let data: Vec<f32> = (0..10 * 12 * 14)
            .map(|t| ((t % 14) as f32 * 0.21).sin() + ((t / 14) as f32 * 0.04).cos() * 4.0)
            .collect();
        let dims = Dims::D3 {
            nz: 10,
            ny: 12,
            nx: 14,
        };
        for order in 1..=3u32 {
            let qf = construct_general(&data, dims, 1e-3, DEFAULT_CAP, order);
            let got = reconstruct_general_prequant(&qf, order);
            let expect = prequantize(&data, 1e-3);
            assert_eq!(got, expect, "order {order} integer path must be lossless");
            let floats: Vec<f32> = reconstruct_general(&qf, order);
            for (o, r) in data.iter().zip(&floats) {
                assert!(
                    ((o - r).abs() as f64) <= 1e-3 * 1.001,
                    "order {order}: {o} vs {r}"
                );
            }
        }
    }

    #[test]
    fn second_order_flattens_quadratics() {
        // `(1 − B)^n` annihilates polynomials of degree < n. On the 1-D
        // quadratic i², the order-2 prediction error is the *constant*
        // second difference (2), so its interior codes collapse to a
        // single symbol; order 1 leaves the varying first difference
        // (2i − 1), spreading codes across hundreds of symbols.
        let data: Vec<f32> = (0..256).map(|i| (i * i) as f32).collect();
        let dims = Dims::D1(256);
        let q1 = construct_general(&data, dims, 0.5, 4096, 1);
        let q2 = construct_general(&data, dims, 0.5, 4096, 2);
        let distinct = |codes: &[u16]| {
            let mut v: Vec<u16> = codes.to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert_eq!(
            distinct(&q2.codes[4..]),
            1,
            "order 2: constant error symbol"
        );
        assert_eq!(
            q2.codes[4],
            2048 + 2,
            "the constant is the 2nd difference, 2"
        );
        assert!(
            distinct(&q1.codes[4..]) > 100,
            "order 1 sees the varying first difference"
        );
    }
}
