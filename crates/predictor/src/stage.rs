//! The predictor stage abstraction behind per-chunk codec plans.
//!
//! Both predictors share the same dual-quantization frame: the engine
//! prequantizes the field into its `i64` arena, the stage turns that
//! arena into quant-codes + sparse outliers on the way in, and rebuilds
//! the prequantized integers from decoded codes + outliers on the way
//! out. What differs is only the prediction structure — the first-order
//! Lorenzo stencil versus the coarse-to-fine interpolation traversal —
//! so that difference is what the trait isolates. Neither implementation
//! allocates per call beyond growing the caller's arenas: chunk workers
//! keep one [`PipelineEngine`](../../cuszp_core) per thread and reuse
//! the same buffers across every chunk regardless of which plan each
//! chunk picked.

use crate::{Dims, OutlierList, ReconstructEngine};

/// One predictor of a per-chunk codec plan: postquantization over an
/// already-prequantized field into caller-owned arenas, and the exact
/// inverse. Implementations must be stateless (`Send + Sync`) so one
/// static instance can serve every worker thread.
pub trait PredictorStage: Send + Sync {
    /// Short stable name ("lorenzo" / "interpolation") for plan labels.
    fn name(&self) -> &'static str;

    /// Quantizes prediction residuals of the prequantized field `dq`
    /// into `codes` (cleared and zero-filled first, so outlier positions
    /// keep the placeholder `0`), returning the out-of-range residuals
    /// index-sorted. `dq` is preserved — the engine may probe it again.
    fn construct(
        &self,
        dq: &mut [i64],
        dims: Dims,
        radius: u16,
        codes: &mut Vec<u16>,
    ) -> OutlierList;

    /// Rebuilds the prequantized integers from decoded codes + outliers
    /// into `dq` (resized to the field length). `engine` selects the
    /// Lorenzo reconstruction kernel; the interpolation traversal is
    /// level-parallel by construction and ignores it.
    fn reconstruct(
        &self,
        codes: &[u16],
        outliers: &OutlierList,
        dims: Dims,
        radius: u16,
        engine: ReconstructEngine,
        dq: &mut Vec<i64>,
    );
}

/// First-order Lorenzo prediction (the paper's pipeline): tiled stencil
/// construction, partial-sum reconstruction.
#[derive(Debug, Clone, Copy, Default)]
pub struct LorenzoStage;

impl PredictorStage for LorenzoStage {
    fn name(&self) -> &'static str {
        "lorenzo"
    }

    fn construct(
        &self,
        dq: &mut [i64],
        dims: Dims,
        radius: u16,
        codes: &mut Vec<u16>,
    ) -> OutlierList {
        crate::construct_codes_into(dq, dims, radius, codes);
        crate::gather_outliers(dq, codes, dims, radius)
    }

    fn reconstruct(
        &self,
        codes: &[u16],
        outliers: &OutlierList,
        dims: Dims,
        radius: u16,
        engine: ReconstructEngine,
        dq: &mut Vec<i64>,
    ) {
        crate::fuse_codes_and_outliers_into(codes, outliers, radius, dq);
        crate::reconstruct_in_place(dq, dims, engine);
    }
}

/// Multi-level cubic interpolation (the SZ3 / cuSZ-i successor): wins on
/// smooth long-range structure, loses on noisy fields.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterpolationStage;

impl PredictorStage for InterpolationStage {
    fn name(&self) -> &'static str {
        "interpolation"
    }

    fn construct(
        &self,
        dq: &mut [i64],
        dims: Dims,
        radius: u16,
        codes: &mut Vec<u16>,
    ) -> OutlierList {
        crate::interpolation::construct_interpolation_codes(dq, dims, radius, codes)
    }

    fn reconstruct(
        &self,
        codes: &[u16],
        outliers: &OutlierList,
        dims: Dims,
        radius: u16,
        _engine: ReconstructEngine,
        dq: &mut Vec<i64>,
    ) {
        crate::interpolation::reconstruct_interpolation_prequant_into(
            codes, outliers, radius, dims, dq,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dequantize, prequantize, DEFAULT_CAP};

    fn field() -> (Vec<f32>, Dims) {
        let dims = Dims::D2 { ny: 37, nx: 53 };
        let data = (0..dims.len())
            .map(|i| (i as f32 * 0.013).sin() * 5.0 + (i as f32 * 0.0007).cos())
            .collect();
        (data, dims)
    }

    #[test]
    fn both_stages_round_trip_through_shared_arenas() {
        let (data, dims) = field();
        let eb = 1e-3;
        let radius = DEFAULT_CAP / 2;
        for stage in [
            &LorenzoStage as &dyn PredictorStage,
            &InterpolationStage as &dyn PredictorStage,
        ] {
            let mut dq = prequantize(&data, eb);
            let expect = dq.clone();
            let mut codes = Vec::new();
            let outliers = stage.construct(&mut dq, dims, radius, &mut codes);
            assert_eq!(dq, expect, "{}: construct must preserve dq", stage.name());
            let mut back = Vec::new();
            stage.reconstruct(
                &codes,
                &outliers,
                dims,
                radius,
                ReconstructEngine::FinePartialSum,
                &mut back,
            );
            assert_eq!(back, expect, "{}: integer path lossless", stage.name());
            let floats: Vec<f32> = dequantize(&back, eb);
            for (o, r) in data.iter().zip(&floats) {
                assert!(((o - r).abs() as f64) <= eb * 1.001, "{o} vs {r}");
            }
        }
    }

    #[test]
    fn stage_codes_match_the_standalone_constructors() {
        let (data, dims) = field();
        let eb = 5e-3;
        let radius = DEFAULT_CAP / 2;

        let mut dq = prequantize(&data, eb);
        let mut codes = Vec::new();
        let out_i = InterpolationStage.construct(&mut dq, dims, radius, &mut codes);
        let qf = crate::construct_interpolation(&data, dims, eb, DEFAULT_CAP);
        assert_eq!(codes, qf.codes);
        assert_eq!(out_i, qf.outliers);

        let out_l = LorenzoStage.construct(&mut dq, dims, radius, &mut codes);
        let qf = crate::construct(&data, dims, eb, DEFAULT_CAP);
        assert_eq!(codes, qf.codes);
        assert_eq!(out_l, qf.outliers);
    }
}
