//! Scalar abstraction over `f32`/`f64` fields.
//!
//! The paper's pipeline is identical for single and double precision —
//! only the prequantization boundary touches the float type, and the
//! attainable Huffman-cap ratio doubles (64× for doubles). Everything
//! between prequant and dequant is exact `i64` arithmetic either way.

/// A floating-point element type the compressor accepts.
pub trait Scalar: Copy + Default + Send + Sync + PartialOrd + std::fmt::Debug + 'static {
    /// Size of one element in bytes (4 or 8).
    const BYTES: usize;
    /// Widens to `f64` (exact for both supported types).
    fn to_f64(self) -> f64;
    /// Rounds from `f64` into this type.
    fn from_f64(v: f64) -> Self;
    /// True for normal/subnormal/zero values.
    fn is_finite_scalar(self) -> bool;
}

impl Scalar for f32 {
    const BYTES: usize = 4;

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline(always)]
    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

impl Scalar for f64 {
    const BYTES: usize = 8;

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline(always)]
    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f64 as Scalar>::BYTES, 8);
    }

    #[test]
    fn conversions_round_trip_exactly_for_f64() {
        let v = 1.234_567_890_123_456_7_f64;
        assert_eq!(f64::from_f64(v.to_f64()), v);
    }

    #[test]
    fn finite_checks() {
        assert!(1.0f32.is_finite_scalar());
        assert!(!f32::NAN.is_finite_scalar());
        assert!(!f64::INFINITY.is_finite_scalar());
    }
}
