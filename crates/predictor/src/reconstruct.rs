//! Lorenzo reconstruction (decompression side): the three engines compared
//! in the paper.
//!
//! * [`ReconstructEngine::CoarseSerial`] — cuSZ's scheme: tiles are
//!   processed independently, but *inside* a tile each element waits for
//!   its reconstructed neighbors (`d = δ + ℓ(reconstructed)`), a branchy,
//!   data-dependent loop.
//! * [`ReconstructEngine::FinePartialSumNaive`] — cuSZ+'s key identity,
//!   proof-of-concept version: reconstruction = N-dimensional inclusive
//!   partial-sum of `q' = q + outlier − r`, computed as N 1-D scan passes.
//!   The y/z passes walk columns/pencils (strided access), mirroring the
//!   "1 item : 1 thread, shared-memory only" naïve GPU kernel.
//! * [`ReconstructEngine::FinePartialSum`] — the optimized kernel: the
//!   y-pass adds whole rows at a time and the z-pass whole planes at a
//!   time (unit-stride, vectorizable), the CPU analog of the paper's
//!   register/warp-shuffle + sequentiality-8 tuning.
//!
//! All engines run on the fused buffer produced by
//! [`fuse_codes_and_outliers`], so the outlier branch of cuSZ
//! ("hit placeholder → look aside") is gone — exactly the modified
//! quantization scheme of §IV-B.1.

use crate::{dequantize, scatter_outliers, Dims, QuantField, Scalar};

/// Selects which reconstruction algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReconstructEngine {
    /// cuSZ-style: parallel over tiles, serial data-dependent loop inside.
    CoarseSerial,
    /// Partial-sum identity, naive column-walking passes.
    FinePartialSumNaive,
    /// Partial-sum identity, row/plane-vectorized passes (cuSZ+).
    FinePartialSum,
}

impl ReconstructEngine {
    /// All engines, for exhaustive testing.
    pub const ALL: [ReconstructEngine; 3] = [
        ReconstructEngine::CoarseSerial,
        ReconstructEngine::FinePartialSumNaive,
        ReconstructEngine::FinePartialSum,
    ];

    /// Short display name used in benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReconstructEngine::CoarseSerial => "coarse(cuSZ)",
            ReconstructEngine::FinePartialSumNaive => "naive",
            ReconstructEngine::FinePartialSum => "optimized(cuSZ+)",
        }
    }
}

/// Builds the fused `q' = code − r (+ outlier)` buffer: the branch-free
/// starting point of cuSZ+ decompression.
pub fn fuse_codes_and_outliers(qf: &QuantField) -> Vec<i64> {
    let mut q = Vec::new();
    fuse_codes_and_outliers_into(&qf.codes, &qf.outliers, qf.radius, &mut q);
    q
}

/// [`fuse_codes_and_outliers`] over bare slices, writing into a
/// caller-owned buffer (resized to the field length): the decode-side
/// scratch hook for the pipeline engine, so per-chunk decompression fuses
/// decoded codes straight from one arena into another without a
/// [`QuantField`] round-trip.
pub fn fuse_codes_and_outliers_into(
    codes: &[u16],
    outliers: &crate::OutlierList,
    radius: u16,
    q: &mut Vec<i64>,
) {
    let r = radius as i64;
    q.clear();
    q.resize(codes.len(), 0);
    cuszp_parallel::par_zip_mut(q, codes, |o, &c| *o = c as i64 - r);
    scatter_outliers(q, outliers);
}

/// Reconstructs the prequantized integer field from a [`QuantField`].
pub fn reconstruct_prequant(qf: &QuantField, engine: ReconstructEngine) -> Vec<i64> {
    let mut q = fuse_codes_and_outliers(qf);
    reconstruct_in_place(&mut q, qf.dims, engine);
    q
}

/// Full decompression: reconstruct integers, then dequantize.
/// Generic over `f32`/`f64` output.
pub fn reconstruct<T: Scalar>(qf: &QuantField, engine: ReconstructEngine) -> Vec<T> {
    let dq = reconstruct_prequant(qf, engine);
    dequantize(&dq, qf.eb)
}

/// Full decompression into a caller-provided buffer — the chunk-aware
/// entry point: `out` is typically a slab of a larger field's buffer, so
/// chunked decompression lands each slab at its offset without a copy.
///
/// Panics if `out.len() != qf.dims.len()`.
pub fn reconstruct_into<T: Scalar>(qf: &QuantField, engine: ReconstructEngine, out: &mut [T]) {
    assert_eq!(
        out.len(),
        qf.dims.len(),
        "output slab length must match dims"
    );
    let dq = reconstruct_prequant(qf, engine);
    crate::dequantize_into(&dq, qf.eb, out);
}

/// Core dispatch: turns a fused `q'` buffer into reconstructed
/// prequantized values, in place.
pub fn reconstruct_in_place(q: &mut [i64], dims: Dims, engine: ReconstructEngine) {
    assert_eq!(q.len(), dims.len(), "buffer length must match dims");
    match (dims, engine) {
        (Dims::D1(_), ReconstructEngine::CoarseSerial) => coarse_1d(q, dims),
        (Dims::D1(_), _) => fine_1d(q, dims),
        (Dims::D2 { .. }, ReconstructEngine::CoarseSerial) => coarse_2d(q, dims),
        (Dims::D2 { .. }, ReconstructEngine::FinePartialSumNaive) => fine_2d(q, dims, false),
        (Dims::D2 { .. }, ReconstructEngine::FinePartialSum) => fine_2d(q, dims, true),
        (Dims::D3 { .. }, ReconstructEngine::CoarseSerial) => coarse_3d(q, dims),
        (Dims::D3 { .. }, ReconstructEngine::FinePartialSumNaive) => fine_3d(q, dims, false),
        (Dims::D3 { .. }, ReconstructEngine::FinePartialSum) => fine_3d(q, dims, true),
    }
}

// ---------------------------------------------------------------- 1-D ----

fn coarse_1d(q: &mut [i64], dims: Dims) {
    let [_, _, tx] = dims.tile();
    cuszp_parallel::par_chunks_mut(q, tx, |_ci, tile| {
        let mut prev = 0i64;
        for x in tile.iter_mut() {
            // d = δ + p, with p = previous reconstructed value.
            *x += prev;
            prev = *x;
        }
    });
}

fn fine_1d(q: &mut [i64], dims: Dims) {
    let [_, _, tx] = dims.tile();
    // An in-tile inclusive scan; identical math to coarse_1d but expressed
    // as the scan primitive (and trivially SIMD-friendly: no branch on the
    // outlier placeholder remains after fusing).
    cuszp_parallel::par_chunks_mut(q, tx, |_ci, tile| {
        cuszp_parallel::scan_inclusive_serial(tile, |a, b| a + b);
    });
}

// ---------------------------------------------------------------- 2-D ----

fn coarse_2d(q: &mut [i64], dims: Dims) {
    let Dims::D2 { nx, .. } = dims else {
        unreachable!()
    };
    let [_, ty, tx] = dims.tile();
    let band = ty * nx;
    cuszp_parallel::par_chunks_mut(q, band, |_bi, rows| {
        let nrows = rows.len() / nx;
        for j in 0..nrows {
            for i in 0..nx {
                let up = j % ty != 0;
                let left = i % tx != 0;
                let idx = j * nx + i;
                let mut p = 0i64;
                if up {
                    p += rows[idx - nx];
                }
                if left {
                    p += rows[idx - 1];
                }
                if up && left {
                    p -= rows[idx - nx - 1];
                }
                rows[idx] += p;
            }
        }
    });
}

fn fine_2d(q: &mut [i64], dims: Dims, optimized: bool) {
    let Dims::D2 { nx, .. } = dims else {
        unreachable!()
    };
    let [_, ty, tx] = dims.tile();
    let band = ty * nx;
    cuszp_parallel::par_chunks_mut(q, band, |_bi, rows| {
        let nrows = rows.len() / nx;
        // Pass 1: inclusive scan along x, restarting at tile boundaries.
        for j in 0..nrows {
            segmented_xscan(&mut rows[j * nx..(j + 1) * nx], tx);
        }
        // Pass 2: inclusive scan along y within the band (bands are tile-
        // aligned, so local row 0 is a tile start).
        if optimized {
            // Row-vectorized: row[j] += row[j−1] elementwise.
            for j in 1..nrows {
                let (prev, cur) = rows.split_at_mut(j * nx);
                let prev = &prev[(j - 1) * nx..];
                for (c, p) in cur[..nx].iter_mut().zip(prev) {
                    *c += *p;
                }
            }
        } else {
            // Column-walking: strided, mirrors the naive GPU kernel.
            for i in 0..nx {
                let mut acc = 0i64;
                for j in 0..nrows {
                    let idx = j * nx + i;
                    acc += rows[idx];
                    rows[idx] = acc;
                }
            }
        }
    });
}

// ---------------------------------------------------------------- 3-D ----

fn coarse_3d(q: &mut [i64], dims: Dims) {
    let Dims::D3 { ny, nx, .. } = dims else {
        unreachable!()
    };
    let [tz, ty, tx] = dims.tile();
    let slab = tz * ny * nx;
    let plane = ny * nx;
    cuszp_parallel::par_chunks_mut(q, slab, |_si, cells| {
        let nplanes = cells.len() / plane;
        for k in 0..nplanes {
            for j in 0..ny {
                for i in 0..nx {
                    let back = k % tz != 0;
                    let up = j % ty != 0;
                    let left = i % tx != 0;
                    let idx = (k * ny + j) * nx + i;
                    let mut p = 0i64;
                    if up {
                        p += cells[idx - nx];
                    }
                    if left {
                        p += cells[idx - 1];
                    }
                    if back {
                        p += cells[idx - plane];
                    }
                    if up && left {
                        p -= cells[idx - nx - 1];
                    }
                    if back && up {
                        p -= cells[idx - plane - nx];
                    }
                    if back && left {
                        p -= cells[idx - plane - 1];
                    }
                    if back && up && left {
                        p += cells[idx - plane - nx - 1];
                    }
                    cells[idx] += p;
                }
            }
        }
    });
}

fn fine_3d(q: &mut [i64], dims: Dims, optimized: bool) {
    let Dims::D3 { ny, nx, .. } = dims else {
        unreachable!()
    };
    let [tz, ty, tx] = dims.tile();
    let slab = tz * ny * nx;
    let plane = ny * nx;
    cuszp_parallel::par_chunks_mut(q, slab, |_si, cells| {
        let nplanes = cells.len() / plane;
        // Pass 1: x-scans per row.
        for row in cells.chunks_mut(nx) {
            segmented_xscan(row, tx);
        }
        // Pass 2: y within each plane, restarting every ty rows.
        for k in 0..nplanes {
            let pl = &mut cells[k * plane..(k + 1) * plane];
            if optimized {
                for j in 1..ny {
                    if j % ty == 0 {
                        continue;
                    }
                    let (prev, cur) = pl.split_at_mut(j * nx);
                    let prev = &prev[(j - 1) * nx..];
                    for (c, p) in cur[..nx].iter_mut().zip(prev) {
                        *c += *p;
                    }
                }
            } else {
                for i in 0..nx {
                    let mut acc = 0i64;
                    for j in 0..ny {
                        if j % ty == 0 {
                            acc = 0;
                        }
                        let idx = j * nx + i;
                        acc += pl[idx];
                        pl[idx] = acc;
                    }
                }
            }
        }
        // Pass 3: z across planes (slabs are tile-aligned, so local plane 0
        // is a tile start).
        if optimized {
            for k in 1..nplanes {
                let (prev, cur) = cells.split_at_mut(k * plane);
                let prev = &prev[(k - 1) * plane..];
                for (c, p) in cur[..plane].iter_mut().zip(prev) {
                    *c += *p;
                }
            }
        } else {
            for j in 0..ny {
                for i in 0..nx {
                    let mut acc = 0i64;
                    for k in 0..nplanes {
                        let idx = (k * ny + j) * nx + i;
                        acc += cells[idx];
                        cells[idx] = acc;
                    }
                }
            }
        }
    });
}

/// Inclusive scan along a row, restarting at every multiple of `tx`.
#[inline]
fn segmented_xscan(row: &mut [i64], tx: usize) {
    for seg in row.chunks_mut(tx) {
        let mut acc = 0i64;
        for x in seg.iter_mut() {
            acc += *x;
            *x = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{construct, prequantize, DEFAULT_CAP};

    fn wavy(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    fn check_round_trip(data: &[f32], dims: Dims, eb: f64) {
        let qf = construct(data, dims, eb, DEFAULT_CAP);
        let expect = prequantize(data, eb);
        for engine in ReconstructEngine::ALL {
            let got = reconstruct_prequant(&qf, engine);
            assert_eq!(got, expect, "engine {} diverged", engine.name());
            let floats: Vec<f32> = reconstruct(&qf, engine);
            for (o, r) in data.iter().zip(&floats) {
                // One f32 ULP of slack at the value's magnitude: dequant
                // must round into the f32 grid (see cuszp-metrics docs).
                let slack = eb * (1.0 + 1e-6) + (o.abs() as f64) * f32::EPSILON as f64;
                assert!(
                    ((o - r).abs() as f64) <= slack,
                    "bound violated by {}: {o} vs {r}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn round_trip_1d() {
        let data = wavy(3000, |i| {
            (i as f32 * 0.01).sin() * 5.0 + (i as f32 * 0.003).cos()
        });
        check_round_trip(&data, Dims::D1(3000), 1e-3);
    }

    #[test]
    fn round_trip_1d_ragged_tail() {
        // Length not a multiple of the 256 tile.
        let data = wavy(1000, |i| (i as f32).sqrt());
        check_round_trip(&data, Dims::D1(1000), 1e-2);
    }

    #[test]
    fn round_trip_2d() {
        let (ny, nx) = (48, 80); // both tile-ragged
        let data = wavy(ny * nx, |t| {
            let j = (t / nx) as f32;
            let i = (t % nx) as f32;
            (j * 0.05).sin() * (i * 0.08).cos() * 10.0
        });
        check_round_trip(&data, Dims::D2 { ny, nx }, 1e-3);
    }

    #[test]
    fn round_trip_3d() {
        let (nz, ny, nx) = (12, 20, 28); // all tile-ragged
        let data = wavy(nz * ny * nx, |t| {
            let i = (t % nx) as f32;
            let j = ((t / nx) % ny) as f32;
            let k = (t / nx / ny) as f32;
            (k * 0.2).sin() + (j * 0.1).cos() * (i * 0.15).sin() * 3.0
        });
        check_round_trip(&data, Dims::D3 { nz, ny, nx }, 1e-3);
    }

    #[test]
    fn round_trip_with_outliers() {
        let mut data = wavy(4096, |i| (i as f32 * 0.002).sin());
        // Inject violent spikes (become outliers).
        for k in (0..4096).step_by(97) {
            data[k] += 1.0e5 * if k % 2 == 0 { 1.0 } else { -1.0 };
        }
        check_round_trip(&data, Dims::D1(4096), 1e-4);
        check_round_trip(&data, Dims::D2 { ny: 64, nx: 64 }, 1e-4);
        check_round_trip(
            &data,
            Dims::D3 {
                nz: 16,
                ny: 16,
                nx: 16,
            },
            1e-4,
        );
    }

    #[test]
    fn engines_agree_on_random_codes() {
        // Directly stress the identity: arbitrary fused buffers must give
        // identical results across all engines.
        let dims = Dims::D3 {
            nz: 9,
            ny: 17,
            nx: 33,
        };
        let n = dims.len();
        let q0: Vec<i64> = (0..n)
            .map(|i| ((i as i64).wrapping_mul(2654435761) % 37) - 18)
            .collect();
        let mut ref_out = q0.clone();
        reconstruct_in_place(&mut ref_out, dims, ReconstructEngine::CoarseSerial);
        for engine in [
            ReconstructEngine::FinePartialSumNaive,
            ReconstructEngine::FinePartialSum,
        ] {
            let mut out = q0.clone();
            reconstruct_in_place(&mut out, dims, engine);
            assert_eq!(out, ref_out, "{} diverged from coarse", engine.name());
        }
    }

    #[test]
    fn partial_sum_identity_2d_small() {
        // 2×3 single tile: reconstruction must equal 2-D prefix sums.
        let dims = Dims::D2 { ny: 2, nx: 3 };
        let q = vec![1i64, 2, 3, 4, 5, 6];
        let mut out = q.clone();
        reconstruct_in_place(&mut out, dims, ReconstructEngine::FinePartialSum);
        // prefix sums: row0: 1,3,6 ; row1: 1+4, 3+(4+5), 6+(4+5+6)
        assert_eq!(out, vec![1, 3, 6, 5, 12, 21]);
    }

    #[test]
    fn empty_field() {
        let mut q: Vec<i64> = vec![];
        reconstruct_in_place(&mut q, Dims::D1(0), ReconstructEngine::FinePartialSum);
        assert!(q.is_empty());
    }
}
