//! Run-length encoding — the alternative coding stage of cuSZ+'s
//! Workflow-RLE (§III of the paper).
//!
//! When the quant-code stream is *smooth* (long runs of the zero-error
//! symbol), RLE breaks Huffman's 1-bit-per-symbol floor: a million-element
//! run costs 6 bytes instead of ≥ 125 KB. Encoding is the
//! `thrust::reduce_by_key` formulation (chunk-local encode + boundary
//! stitch, see [`cuszp_parallel::reduce_by_key`]); its regular forward
//! access pattern is exactly why the paper reports ~100 GB/s for this
//! kernel where dictionary coders crawl.
//!
//! [`RleVleEncoded`] is the composed "RLE + optional VLE" stage: Huffman
//! over the run values (same multi-byte symbols as Workflow-Huffman) plus
//! Huffman over LEB128-varint bytes of the run lengths — the paper's
//! "steady 2×-3× ratio gain beyond RLE".

pub mod varint;

use cuszp_huffman::{build_codebook_limited, encode, histogram, HuffmanEncoded};

/// Plain RLE output: parallel arrays of run values and run lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleEncoded {
    /// Value of each maximal run.
    pub values: Vec<u16>,
    /// Length of each maximal run.
    pub counts: Vec<u32>,
    /// Total number of symbols encoded.
    pub n: u64,
}

impl RleEncoded {
    /// Number of runs.
    pub fn n_runs(&self) -> usize {
        self.values.len()
    }

    /// Mean run length; 0 for an empty stream.
    pub fn mean_run_length(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.n as f64 / self.values.len() as f64
        }
    }

    /// Uncompressed storage: 2 bytes per value + 4 bytes per count.
    ///
    /// This is the paper's default ("compressing the metadata of RLE
    /// output is optional and by default disabled").
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 2 + self.counts.len() * 4 + 8
    }
}

/// Run-length encodes a symbol stream (maximal runs, in order).
pub fn rle_encode(symbols: &[u16]) -> RleEncoded {
    let runs = cuszp_parallel::reduce_by_key(symbols);
    let mut values = Vec::with_capacity(runs.len());
    let mut counts = Vec::with_capacity(runs.len());
    for (v, c) in runs {
        values.push(v);
        counts.push(c);
    }
    RleEncoded {
        values,
        counts,
        n: symbols.len() as u64,
    }
}

/// Expands an [`RleEncoded`] back to the symbol stream.
///
/// Panics if the runs do not sum to `n` — callers decoding untrusted
/// bytes should use [`rle_decode_checked`].
pub fn rle_decode(enc: &RleEncoded) -> Vec<u16> {
    rle_decode_checked(enc).expect("corrupt RLE stream")
}

/// Panic-free expansion of a possibly corrupted encoding: mismatched
/// value/count array lengths or runs not summing to exactly `n` return
/// `None`, and nothing larger than the declared (validated) `n` is ever
/// allocated.
pub fn rle_decode_checked(enc: &RleEncoded) -> Option<Vec<u16>> {
    let mut out = Vec::new();
    rle_decode_checked_into(enc, &mut out)?;
    Some(out)
}

/// [`rle_decode_checked`] expanding into a caller-owned buffer (cleared
/// first), so repeated per-chunk decodes reuse one symbol arena. On
/// `None` the buffer contents are unspecified.
pub fn rle_decode_checked_into(enc: &RleEncoded, out: &mut Vec<u16>) -> Option<()> {
    if enc.values.len() != enc.counts.len() {
        return None;
    }
    let mut total = 0u64;
    for &c in &enc.counts {
        total = total.checked_add(c as u64)?;
    }
    if total != enc.n {
        return None;
    }
    let n = usize::try_from(enc.n).ok()?;
    out.clear();
    if out.capacity() < n {
        out.try_reserve_exact(n - out.len()).ok()?;
    }
    for (&v, &c) in enc.values.iter().zip(&enc.counts) {
        out.resize(out.len() + c as usize, v);
    }
    Some(())
}

/// RLE followed by variable-length (Huffman) encoding of both the run
/// values and the varint bytes of the run lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleVleEncoded {
    /// Huffman-coded run values (multi-byte symbols, `cap` bins).
    pub values: HuffmanEncoded,
    /// Huffman-coded LEB128 bytes of run lengths (256 bins).
    pub counts: HuffmanEncoded,
    /// Total number of symbols in the original stream.
    pub n: u64,
    /// Number of runs.
    pub n_runs: u64,
}

impl RleVleEncoded {
    /// Total archive footprint of the composed stage.
    pub fn storage_bytes(&self) -> usize {
        self.values.storage_bytes() + self.counts.storage_bytes() + 16
    }

    /// Exact combined byte length of the two serialized Huffman
    /// sub-streams ([`HuffmanEncoded::serialized_bytes`]), so containers
    /// can pre-size output buffers without serializing twice.
    pub fn serialized_bytes(&self) -> usize {
        self.values.serialized_bytes() + self.counts.serialized_bytes()
    }
}

/// Composes RLE with a VLE pass over its two output streams.
///
/// `cap` is the symbol alphabet size for the run values (the quantization
/// cap of the producing predictor).
pub fn rle_vle_encode(symbols: &[u16], cap: u16) -> RleVleEncoded {
    let rle = rle_encode(symbols);
    rle_vle_from_rle(&rle, cap)
}

/// VLE pass over an existing RLE encoding (lets callers reuse the RLE).
pub fn rle_vle_from_rle(rle: &RleEncoded, cap: u16) -> RleVleEncoded {
    // Length-limited books (≤16 bits) keep the table decoder fast and
    // cost a negligible ratio delta; see cuszp_huffman::code_lengths_limited.
    let vhist = histogram(&rle.values, cap as usize);
    let vbook = build_codebook_limited(&vhist, 16);
    let values = encode(&rle.values, &vbook, cuszp_huffman::DEFAULT_ENCODE_CHUNK);

    let count_bytes = varint::encode_stream(&rle.counts);
    let csyms: Vec<u16> = count_bytes.iter().map(|&b| b as u16).collect();
    let chist = histogram(&csyms, 256);
    let cbook = build_codebook_limited(&chist, 16);
    let counts = encode(&csyms, &cbook, cuszp_huffman::DEFAULT_ENCODE_CHUNK);

    RleVleEncoded {
        values,
        counts,
        n: rle.n,
        n_runs: rle.values.len() as u64,
    }
}

/// Decodes an [`RleVleEncoded`] back to the original symbol stream.
///
/// Panics on corruption — callers decoding untrusted bytes should use
/// [`rle_vle_decode_checked`].
pub fn rle_vle_decode(enc: &RleVleEncoded) -> Vec<u16> {
    rle_vle_decode_checked(enc).expect("corrupt RLE+VLE stream")
}

/// Panic-free decoding of a possibly corrupted RLE+VLE stream: failures
/// in either Huffman sub-stream, truncated varints, or runs that do not
/// reassemble into exactly `n` symbols return `None`.
pub fn rle_vle_decode_checked(enc: &RleVleEncoded) -> Option<Vec<u16>> {
    let mut out = Vec::new();
    rle_vle_decode_checked_into(enc, &mut out)?;
    Some(out)
}

/// [`rle_vle_decode_checked`] expanding into a caller-owned buffer. The
/// run-level intermediates stay internal (they are small — one entry per
/// run); only the full-length symbol expansion lands in `out`.
pub fn rle_vle_decode_checked_into(enc: &RleVleEncoded, out: &mut Vec<u16>) -> Option<()> {
    let values = cuszp_huffman::decode_fast_checked(&enc.values)?;
    let csyms = cuszp_huffman::decode_fast_checked(&enc.counts)?;
    if csyms.iter().any(|&s| s > 0xFF) {
        return None;
    }
    let cbytes: Vec<u8> = csyms.iter().map(|&s| s as u8).collect();
    let n_runs = usize::try_from(enc.n_runs).ok()?;
    let counts = varint::decode_stream_checked(&cbytes, n_runs)?;
    let rle = RleEncoded {
        values,
        counts,
        n: enc.n,
    };
    rle_decode_checked_into(&rle, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_round_trips() {
        let s: Vec<u16> = b"aabcccccaa".iter().map(|&b| b as u16).collect();
        let enc = rle_encode(&s);
        assert_eq!(
            enc.values,
            vec![b'a' as u16, b'b' as u16, b'c' as u16, b'a' as u16]
        );
        assert_eq!(enc.counts, vec![2, 1, 5, 2]);
        assert_eq!(rle_decode(&enc), s);
        assert_eq!(enc.n_runs(), 4);
        assert!((enc.mean_run_length() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn smooth_stream_compresses_dramatically() {
        // 1M-symbol stream with runs of ~1000: RLE must crush it.
        let mut syms = Vec::with_capacity(1_000_000);
        for run in 0..1000u16 {
            syms.extend(std::iter::repeat_n(512 + run % 3, 1000));
        }
        let enc = rle_encode(&syms);
        assert!(enc.n_runs() <= 1000);
        let cr = (syms.len() * 2) as f64 / enc.storage_bytes() as f64;
        assert!(cr > 200.0, "RLE CR on smooth data: {cr}");
        assert_eq!(rle_decode(&enc), syms);
    }

    #[test]
    fn rough_stream_expands() {
        // Alternating symbols: RLE must *lose* (the reason the adaptive
        // workflow exists).
        let syms: Vec<u16> = (0..10_000).map(|i| (i % 2) as u16).collect();
        let enc = rle_encode(&syms);
        assert_eq!(enc.n_runs(), 10_000);
        assert!(enc.storage_bytes() > syms.len() * 2);
    }

    #[test]
    fn rle_vle_round_trip() {
        // Alternating values so runs do not merge: a large, skewed run
        // population where the VLE pass beats plain RLE despite its fixed
        // codebook overhead (the paper's "steady 2×-3× gain" regime).
        let mut syms = Vec::new();
        for i in 0..60_000u32 {
            let v = if i % 2 == 0 { 512u16 } else { 511 };
            syms.extend(std::iter::repeat_n(v, 1 + (i % 7) as usize));
        }
        let enc = rle_vle_encode(&syms, 1024);
        assert_eq!(rle_vle_decode(&enc), syms);
        let plain = rle_encode(&syms);
        assert!(
            enc.storage_bytes() < plain.storage_bytes(),
            "VLE pass should shrink a large run population: {} vs {}",
            enc.storage_bytes(),
            plain.storage_bytes()
        );
    }

    #[test]
    fn empty_stream() {
        let enc = rle_encode(&[]);
        assert_eq!(enc.n_runs(), 0);
        assert!(rle_decode(&enc).is_empty());
        let vle = rle_vle_encode(&[], 16);
        assert!(rle_vle_decode(&vle).is_empty());
    }

    #[test]
    fn single_symbol_stream() {
        let syms = vec![7u16; 123_456];
        let enc = rle_encode(&syms);
        assert_eq!(enc.values, vec![7]);
        assert_eq!(enc.counts, vec![123_456]);
        assert_eq!(rle_decode(&enc), syms);
    }
}
