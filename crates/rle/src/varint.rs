//! LEB128 variable-length integers for run-length metadata.
//!
//! Run lengths are overwhelmingly small on rough stretches and large on
//! smooth ones; LEB128 gives 1 byte for lengths < 128, and the byte
//! stream's skewed histogram then feeds the optional Huffman pass.

/// Encodes one `u32` as LEB128, appending to `out`.
pub fn encode_one(mut v: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 `u32` starting at `pos`; returns `(value, new_pos)`.
///
/// Panics on truncated input or a varint wider than 5 bytes.
pub fn decode_one(bytes: &[u8], mut pos: usize) -> (u32, usize) {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        assert!(pos < bytes.len(), "truncated varint");
        assert!(shift < 35, "varint too wide for u32");
        let b = bytes[pos];
        pos += 1;
        v |= ((b & 0x7f) as u32) << shift;
        if b & 0x80 == 0 {
            return (v, pos);
        }
        shift += 7;
    }
}

/// Encodes a whole slice of counts.
pub fn encode_stream(counts: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(counts.len() * 2);
    for &c in counts {
        encode_one(c, &mut out);
    }
    out
}

/// Decodes exactly `n` counts from a byte stream.
pub fn decode_stream(bytes: &[u8], n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    let mut pos = 0;
    for _ in 0..n {
        let (v, p) = decode_one(bytes, pos);
        out.push(v);
        pos = p;
    }
    out
}

/// Panic-free [`decode_one`]: `None` on truncation or a varint wider
/// than a `u32`.
pub fn decode_one_checked(bytes: &[u8], mut pos: usize) -> Option<(u32, usize)> {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        if pos >= bytes.len() || shift >= 35 {
            return None;
        }
        let b = bytes[pos];
        pos += 1;
        v |= ((b & 0x7f) as u32) << shift;
        if b & 0x80 == 0 {
            return Some((v, pos));
        }
        shift += 7;
    }
}

/// Panic-free [`decode_stream`]: `None` if the bytes do not hold exactly
/// `n` well-formed varints. Allocation is bounded by the stream itself
/// (a varint costs at least one byte), not by the untrusted `n`.
pub fn decode_stream_checked(bytes: &[u8], n: usize) -> Option<Vec<u32>> {
    if n > bytes.len() {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    let mut pos = 0;
    for _ in 0..n {
        let (v, p) = decode_one_checked(bytes, pos)?;
        out.push(v);
        pos = p;
    }
    if pos == bytes.len() {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_values() {
        let mut out = Vec::new();
        encode_one(0, &mut out);
        encode_one(127, &mut out);
        assert_eq!(out, vec![0, 127]);
    }

    #[test]
    fn multi_byte_boundaries() {
        for v in [128u32, 16_383, 16_384, u32::MAX] {
            let mut out = Vec::new();
            encode_one(v, &mut out);
            let (got, pos) = decode_one(&out, 0);
            assert_eq!(got, v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn stream_round_trip() {
        let counts: Vec<u32> = (0..10_000).map(|i| (i * i) % 1_000_000).collect();
        let bytes = encode_stream(&counts);
        assert_eq!(decode_stream(&bytes, counts.len()), counts);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_input_panics() {
        decode_one(&[0x80], 1);
    }
}
