//! Property tests: RLE and RLE+VLE are exact inverses for arbitrary
//! streams, runs are maximal, and storage accounting is consistent.

use cuszp_rle::{rle_decode, rle_encode, rle_vle_decode, rle_vle_encode, varint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rle_round_trip(syms in prop::collection::vec(0u16..8, 0..8000)) {
        let enc = rle_encode(&syms);
        prop_assert_eq!(rle_decode(&enc), syms);
    }

    #[test]
    fn runs_are_maximal_and_sum_to_n(syms in prop::collection::vec(0u16..4, 0..5000)) {
        let enc = rle_encode(&syms);
        for w in enc.values.windows(2) {
            prop_assert_ne!(w[0], w[1]);
        }
        let total: u64 = enc.counts.iter().map(|&c| c as u64).sum();
        prop_assert_eq!(total, syms.len() as u64);
    }

    #[test]
    fn rle_vle_round_trip(runs in prop::collection::vec((0u16..64, 1u32..200), 0..300)) {
        let mut syms = Vec::new();
        for &(v, c) in &runs {
            syms.extend(std::iter::repeat_n(v, c as usize));
        }
        let enc = rle_vle_encode(&syms, 64);
        prop_assert_eq!(rle_vle_decode(&enc), syms);
    }

    #[test]
    fn varint_round_trip(counts in prop::collection::vec(any::<u32>(), 0..2000)) {
        let bytes = varint::encode_stream(&counts);
        prop_assert_eq!(varint::decode_stream(&bytes, counts.len()), counts);
    }

    #[test]
    fn varint_is_compact_for_small_values(counts in prop::collection::vec(1u32..128, 1..1000)) {
        let bytes = varint::encode_stream(&counts);
        prop_assert_eq!(bytes.len(), counts.len());
    }

    #[test]
    fn adversarial_run_structure_round_trips(
        runs in prop::collection::vec((0u16..1024, prop::sample::select(vec![1u32, 2, 127, 128, 129, 16_384, 65_535])), 0..40)
    ) {
        // Runs whose lengths sit on varint byte-width boundaries, adjacent
        // runs allowed to share a value (they must merge into one maximal
        // run) — the full RLE→VLE→decode stack must be exact.
        let mut syms = Vec::new();
        for &(v, c) in &runs {
            syms.extend(std::iter::repeat_n(v, c as usize));
        }
        let enc = rle_encode(&syms);
        for w in enc.values.windows(2) {
            prop_assert_ne!(w[0], w[1], "runs must be maximal");
        }
        prop_assert_eq!(rle_decode(&enc), syms.clone());
        let vle = rle_vle_encode(&syms, 1024);
        prop_assert_eq!(rle_vle_decode(&vle), syms);
    }
}

// ---- Deterministic adversarial edges (satellite coverage) ----

/// One maximal 300k-element run: a single `u32` count must carry it and
/// both decoders must reproduce every element.
#[test]
fn max_length_single_run() {
    let syms = vec![513u16; 300_000];
    let enc = rle_encode(&syms);
    assert_eq!(enc.values, vec![513]);
    assert_eq!(enc.counts, vec![300_000]);
    assert_eq!(rle_decode(&enc), syms);
    let vle = rle_vle_encode(&syms, 1024);
    assert_eq!(vle.n_runs, 1);
    assert_eq!(rle_vle_decode(&vle), syms);
    // A single run costs bytes, not kilobytes.
    assert!(
        vle.storage_bytes() < 200,
        "one run must stay tiny: {}",
        vle.storage_bytes()
    );
}

/// Strictly alternating symbols: every run has length 1 (RLE's worst
/// case) and the round trip must still be exact through the VLE pass.
#[test]
fn alternating_symbols_worst_case() {
    let syms: Vec<u16> = (0..50_001)
        .map(|i| if i % 2 == 0 { 511 } else { 513 })
        .collect();
    let enc = rle_encode(&syms);
    assert_eq!(enc.n_runs(), syms.len());
    assert!(enc.counts.iter().all(|&c| c == 1));
    assert_eq!(rle_decode(&enc), syms);
    let vle = rle_vle_encode(&syms, 1024);
    assert_eq!(rle_vle_decode(&vle), syms);
}

/// Empty input flows through every layer (RLE, VLE, varint) untouched.
#[test]
fn empty_input_everywhere() {
    let enc = rle_encode(&[]);
    assert_eq!(enc.n_runs(), 0);
    assert_eq!(enc.n, 0);
    assert!(rle_decode(&enc).is_empty());
    assert!(rle_vle_decode(&rle_vle_encode(&[], 1024)).is_empty());
    assert!(varint::encode_stream(&[]).is_empty());
    assert!(varint::decode_stream(&[], 0).is_empty());
}

/// LEB128 byte-width boundaries: 0, 127 | 128, 16383 | 16384, and
/// `u32::MAX` must take exactly 1, 2, 3, and 5 bytes respectively.
#[test]
fn varint_boundary_widths() {
    for (v, width) in [
        (0u32, 1usize),
        (1, 1),
        (127, 1),
        (128, 2),
        (16_383, 2),
        (16_384, 3),
        (2_097_151, 3),
        (2_097_152, 4),
        (268_435_455, 4),
        (268_435_456, 5),
        (u32::MAX, 5),
    ] {
        let mut bytes = Vec::new();
        varint::encode_one(v, &mut bytes);
        assert_eq!(bytes.len(), width, "value {v} must take {width} bytes");
        let (back, pos) = varint::decode_one(&bytes, 0);
        assert_eq!(back, v);
        assert_eq!(pos, width);
    }
    // The same values concatenated as one stream.
    let vals = vec![0, 127, 128, 16_383, 16_384, u32::MAX];
    let bytes = varint::encode_stream(&vals);
    assert_eq!(bytes.len(), 1 + 1 + 2 + 2 + 3 + 5);
    assert_eq!(varint::decode_stream(&bytes, vals.len()), vals);
}
