//! Property tests: RLE and RLE+VLE are exact inverses for arbitrary
//! streams, runs are maximal, and storage accounting is consistent.

use cuszp_rle::{rle_decode, rle_encode, rle_vle_decode, rle_vle_encode, varint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rle_round_trip(syms in prop::collection::vec(0u16..8, 0..8000)) {
        let enc = rle_encode(&syms);
        prop_assert_eq!(rle_decode(&enc), syms);
    }

    #[test]
    fn runs_are_maximal_and_sum_to_n(syms in prop::collection::vec(0u16..4, 0..5000)) {
        let enc = rle_encode(&syms);
        for w in enc.values.windows(2) {
            prop_assert_ne!(w[0], w[1]);
        }
        let total: u64 = enc.counts.iter().map(|&c| c as u64).sum();
        prop_assert_eq!(total, syms.len() as u64);
    }

    #[test]
    fn rle_vle_round_trip(runs in prop::collection::vec((0u16..64, 1u32..200), 0..300)) {
        let mut syms = Vec::new();
        for &(v, c) in &runs {
            syms.extend(std::iter::repeat_n(v, c as usize));
        }
        let enc = rle_vle_encode(&syms, 64);
        prop_assert_eq!(rle_vle_decode(&enc), syms);
    }

    #[test]
    fn varint_round_trip(counts in prop::collection::vec(any::<u32>(), 0..2000)) {
        let bytes = varint::encode_stream(&counts);
        prop_assert_eq!(varint::decode_stream(&bytes, counts.len()), counts);
    }

    #[test]
    fn varint_is_compact_for_small_values(counts in prop::collection::vec(1u32..128, 1..1000)) {
        let bytes = varint::encode_stream(&counts);
        prop_assert_eq!(bytes.len(), counts.len());
    }
}
