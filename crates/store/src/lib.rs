//! cuszp-store — a log-structured durable shard store for the cluster
//! tier.
//!
//! PR 9 gave every node an in-memory `ShardStore`: correct while the
//! process lives, empty after a restart, healed only by an operator
//! running `cluster-scrub`. This crate is the move from "fault-tolerant
//! while running" to "fault-tolerant across restarts": shards live in
//! append-only segment files of checksummed records, an in-memory index
//! is rebuilt by scanning the segments at boot, and a kill -9 at any
//! byte offset loses at most the tail record that was mid-write — never
//! a previously acknowledged one (under `FsyncPolicy::Always`).
//!
//! The layers:
//!
//! - [`record`]: the on-disk record codec —
//!   `[magic][record_len][kind flags key shard_idx meta payload][FNV-1a trailer]`,
//!   defensively parsed (allocation-guarded, every field bounds-checked,
//!   typed [`RecordFault`]s, never a panic on arbitrary bytes).
//! - [`log`]: [`LogStore`] — segment files `seg-<n>.czl`, the boot
//!   recovery scan (torn tails truncated with a typed report, mid-log
//!   corruption skipped per-record and counted), tombstones for
//!   delete/overwrite, size-triggered compaction that rewrites live
//!   records into a fresh segment behind an atomic temp+rename+manifest
//!   swap, and a configurable [`FsyncPolicy`].
//! - [`fsck`]: the offline scanner behind `cuszp store-fsck` — the same
//!   recovery rules as boot, run read-only, with a per-record report
//!   and the PR 4 exit-code taxonomy (0 clean / 1 repairable-via-scrub
//!   / 2 unreadable).
//!
//! Reads are checksum-gated end to end: `get` re-verifies the record
//! trailer before returning bytes, so a rotted record surfaces as
//! *missing* (plus a typed fault) and anti-entropy re-replicates it —
//! the store never serves corrupt bytes as valid. Verified payload
//! checksums are cached in the index, so repeated inventories
//! (`verify_and_list`) of an unchanged node are O(index), not
//! O(total bytes).
//!
//! Everything is std-only and single-writer: callers (the server) wrap
//! the store in a mutex; the store itself never spawns threads.

pub mod fsck;
pub mod log;
pub mod record;

pub use fsck::{scan_dir, DirReport, RecordStatus, SegmentReport};
pub use log::{LogStore, RecoveryReport, SegmentFault, ShardEntry, StoredShard};
pub use record::{Record, RecordFault, RecordKind, FLAG_REPAIR};

use std::path::PathBuf;

/// FNV-1a over a byte slice — the workspace's checksum of record, same
/// constants as `cuszp-core` and the CSRP wire layer.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// When appended records are flushed to stable storage.
///
/// `Always` is the durability contract the cluster smoke test relies on
/// (a `kill -9` after an acknowledged put must not lose the shard);
/// `EveryNBytes` trades a bounded recent-write window for write
/// throughput; `Never` leaves flushing to the OS entirely (crash
/// consistency is still guaranteed by the recovery scan — only
/// durability of recent writes is at risk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record.
    Always,
    /// `fsync` once at least this many bytes have been appended since
    /// the last sync (and on segment roll / compaction / drop).
    EveryNBytes(u64),
    /// Never `fsync` explicitly; the OS flushes when it pleases.
    Never,
}

impl FsyncPolicy {
    /// Parses a CLI spelling: `always`, `never`, or a byte count for
    /// [`FsyncPolicy::EveryNBytes`] (0 means `always`).
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.parse::<u64>() {
                Ok(0) => Ok(FsyncPolicy::Always),
                Ok(n) => Ok(FsyncPolicy::EveryNBytes(n)),
                Err(_) => Err(format!(
                    "bad fsync policy '{other}' (always | never | <every-n-bytes>)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryNBytes(n) => write!(f, "every {n} bytes"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Configuration for a [`LogStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the segments and manifest. Created if absent.
    pub dir: PathBuf,
    /// Flush policy for appended records.
    pub fsync: FsyncPolicy,
    /// Compaction trigger: once the segment files exceed this many
    /// bytes *and* at least a quarter of them are dead (superseded or
    /// tombstoned), live records are rewritten into a fresh segment.
    pub compact_at: u64,
}

impl StoreConfig {
    /// Defaults: fsync always, compact at 256 MiB.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            compact_at: 256 << 20,
        }
    }
}

/// Typed store failures. Damage found inside segments is *not* an
/// error — it is reported through [`RecoveryReport`] / [`SegmentFault`]
/// and the affected records degrade to missing; `StoreError` is for
/// environmental failures the store cannot work around.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed; the path names the file involved.
    Io { path: String, err: std::io::Error },
    /// An allocation was refused (oversized record or scan buffer).
    Alloc { bytes: usize },
    /// The key exceeds [`record::MAX_KEY_BYTES`].
    KeyTooLong { len: usize },
    /// The payload exceeds [`record::MAX_PAYLOAD_BYTES`].
    PayloadTooLarge { len: usize },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, err } => write!(f, "{path}: {err}"),
            StoreError::Alloc { bytes } => write!(f, "allocation of {bytes} bytes refused"),
            StoreError::KeyTooLong { len } => write!(
                f,
                "key of {len} bytes exceeds the {} byte cap",
                record::MAX_KEY_BYTES
            ),
            StoreError::PayloadTooLarge { len } => write!(
                f,
                "payload of {len} bytes exceeds the {} byte cap",
                record::MAX_PAYLOAD_BYTES
            ),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses_all_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("1048576"),
            Ok(FsyncPolicy::EveryNBytes(1 << 20))
        );
        assert_eq!(FsyncPolicy::parse("0"), Ok(FsyncPolicy::Always));
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn fnv_matches_workspace_constants() {
        // Pinned against the wire layer's own test vector convention:
        // the empty string hashes to the FNV-1a offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
