//! [`LogStore`]: the durable log-structured shard store.
//!
//! ```text
//!  data-dir/
//!    MANIFEST          ← text manifest: active segment set + next seq
//!    seg-00000001.czl  ← [segment header][record][record]…  (sealed)
//!    seg-00000002.czl  ← …                                  (active, appended)
//! ```
//!
//! Every mutation appends one checksummed record to the active segment;
//! an in-memory index maps `(key, shard_idx)` to the newest record for
//! that slot. At boot the index is rebuilt by scanning every segment in
//! sequence order: a torn record at the active tail is truncated (the
//! crash window of an unsynced write), mid-log damage is skipped
//! per-record, and both surface as typed [`SegmentFault`]s in the
//! [`RecoveryReport`] — recovery never panics and never resurrects
//! bytes that fail their checksum.
//!
//! Overwrites and tombstones leave dead bytes behind; once the segment
//! set exceeds `compact_at` bytes and at least a quarter are dead,
//! compaction rewrites the live records into a fresh segment via
//! temp-file + rename + manifest swap, so a crash at any byte of the
//! compaction leaves either the old state or the new state — never a
//! mix.

use std::collections::{BTreeSet, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::record::{
    parse_record, parse_segment_header, segment_header, Parsed, Record, RecordFault, RecordKind,
    MAX_KEY_BYTES, MAX_PAYLOAD_BYTES, SEGMENT_HEADER_BYTES,
};
use crate::{fnv1a, FsyncPolicy, StoreConfig, StoreError};

/// Cap on remembered *runtime* faults (rot found by `get`/`list` after
/// boot); the counter keeps counting past it.
const MAX_RUNTIME_FAULTS: usize = 256;

/// One stored shard, read back checksum-verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredShard {
    /// The shard bytes (RS-padded; `total_len` recovers the tail).
    pub bytes: Vec<u8>,
    /// FNV-1a of `bytes`.
    pub checksum: u64,
    /// Length of the whole archive the stripe encodes.
    pub total_len: u64,
    /// FNV-1a of the whole archive.
    pub archive_fnv: u64,
}

/// One index entry of a `verify_and_list` inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    pub key: String,
    pub shard_idx: u16,
    /// Shard length in bytes.
    pub len: u64,
    /// FNV-1a of the shard bytes (verified, possibly cached).
    pub checksum: u64,
    pub total_len: u64,
    pub archive_fnv: u64,
}

/// Typed damage found in the segment files — at boot or afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentFault {
    /// The active segment ended mid-record (the crash window); the tail
    /// was truncated back to the last whole record.
    TornTail { seq: u64, offset: u64, dropped: u64 },
    /// A record failed validation and was skipped; its slot degrades to
    /// the previous surviving record (or to missing).
    CorruptRecord {
        seq: u64,
        offset: u64,
        fault: RecordFault,
    },
    /// Bytes that parse as no record at all were skipped while hunting
    /// for the next record magic.
    ResyncSkip { seq: u64, offset: u64, skipped: u64 },
    /// A segment file's own header is damaged; its records were
    /// recovered by magic-scan.
    BadSegmentHeader { seq: u64 },
    /// The manifest names a segment that does not exist on disk.
    MissingSegment { seq: u64 },
    /// The manifest was missing or unreadable; the segment set was
    /// reconstructed from the directory listing.
    ManifestFallback,
}

impl std::fmt::Display for SegmentFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentFault::TornTail {
                seq,
                offset,
                dropped,
            } => write!(
                f,
                "seg-{seq}: torn tail at offset {offset} ({dropped} bytes truncated)"
            ),
            SegmentFault::CorruptRecord { seq, offset, fault } => {
                write!(f, "seg-{seq}: corrupt record at offset {offset}: {fault}")
            }
            SegmentFault::ResyncSkip {
                seq,
                offset,
                skipped,
            } => write!(
                f,
                "seg-{seq}: {skipped} unparseable bytes skipped at offset {offset}"
            ),
            SegmentFault::BadSegmentHeader { seq } => {
                write!(f, "seg-{seq}: damaged segment header")
            }
            SegmentFault::MissingSegment { seq } => {
                write!(f, "seg-{seq}: named by manifest but missing on disk")
            }
            SegmentFault::ManifestFallback => {
                write!(
                    f,
                    "manifest missing or unreadable; segments listed from directory"
                )
            }
        }
    }
}

/// What the boot scan found.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Segment files scanned.
    pub segments_scanned: u64,
    /// Valid records replayed (puts + tombstones, including superseded).
    pub records_replayed: u64,
    /// Live shards in the rebuilt index.
    pub live_shards: u64,
    /// Tombstones replayed.
    pub tombstones: u64,
    /// Bytes cut off the active tail (torn final write).
    pub truncated_tail_bytes: u64,
    /// Every typed fault, in scan order.
    pub faults: Vec<SegmentFault>,
}

impl RecoveryReport {
    /// True when the log replayed without a single fault.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "clean: {} live shard(s) from {} record(s) in {} segment(s)",
                self.live_shards, self.records_replayed, self.segments_scanned
            )
        } else {
            write!(
                f,
                "{} fault(s): {} live shard(s) from {} record(s) in {} segment(s), {} tail byte(s) truncated",
                self.faults.len(),
                self.live_shards,
                self.records_replayed,
                self.segments_scanned,
                self.truncated_tail_bytes
            )
        }
    }
}

#[derive(Debug, Clone)]
struct IndexEntry {
    seq: u64,
    /// Byte offset of the record start within its segment file.
    offset: u64,
    /// Whole-record bytes on disk.
    disk_len: u32,
    payload_len: u32,
    /// FNV-1a of the payload, captured at write or last verification.
    payload_fnv: u64,
    total_len: u64,
    archive_fnv: u64,
    /// Whether the on-disk bytes have been checksum-verified since the
    /// record was written. Cleared on write, set by boot scan, `get`,
    /// and `verify_and_list` — the cache that keeps repeated scrubs
    /// O(index) instead of O(total bytes).
    verified: bool,
}

/// The durable shard store. Single-writer: callers serialize access
/// (the server wraps it in a mutex).
#[derive(Debug)]
pub struct LogStore {
    dir: PathBuf,
    fsync: FsyncPolicy,
    compact_at: u64,
    active: File,
    active_seq: u64,
    active_len: u64,
    next_seq: u64,
    unsynced: u64,
    segments: BTreeSet<u64>,
    readers: HashMap<u64, File>,
    index: HashMap<(String, u16), IndexEntry>,
    /// Total bytes across all segment files (headers included).
    total_bytes: u64,
    /// Bytes belonging to superseded/tombstoned/corrupt records.
    dead_bytes: u64,
    recovery: RecoveryReport,
    runtime_faults: Vec<SegmentFault>,
    corrupt_dropped: u64,
    compactions: u64,
}

fn io_err(path: &Path, err: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        err,
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.czl"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

/// Parses `seg-<n>.czl` file names (zero padding optional).
pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".czl")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Best-effort directory fsync so renames and deletions are durable.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Reads a whole file with a fallible reservation.
pub(crate) fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    let mut f = File::open(path).map_err(|e| io_err(path, e))?;
    let len = f
        .metadata()
        .map_err(|e| io_err(path, e))?
        .len()
        .min(usize::MAX as u64) as usize;
    let mut buf = Vec::new();
    buf.try_reserve_exact(len)
        .map_err(|_| StoreError::Alloc { bytes: len })?;
    f.read_to_end(&mut buf).map_err(|e| io_err(path, e))?;
    Ok(buf)
}

/// Writes `bytes` to `path.tmp` then renames over `path` — the atomic
/// swap used for the manifest and compacted segments.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension(match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{ext}.tmp"),
        None => "tmp".to_string(),
    });
    let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
    f.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        io_err(path, e)
    })?;
    if let Some(dir) = path.parent() {
        sync_dir(dir);
    }
    Ok(())
}

/// The manifest: a tiny text file naming the authoritative segment set.
/// Written atomically; parsed defensively (any irregularity falls back
/// to the directory listing, which is always safe because sequence
/// numbers order replay).
fn encode_manifest(segments: &BTreeSet<u64>, next_seq: u64) -> String {
    let list: Vec<String> = segments.iter().map(|s| s.to_string()).collect();
    format!(
        "czl-manifest 1\nsegments {}\nnext {}\n",
        list.join(" "),
        next_seq
    )
}

pub(crate) fn parse_manifest(text: &str) -> Option<(BTreeSet<u64>, u64)> {
    let mut lines = text.lines();
    if lines.next()? != "czl-manifest 1" {
        return None;
    }
    let seg_line = lines.next()?.strip_prefix("segments")?;
    let mut segments = BTreeSet::new();
    for tok in seg_line.split_whitespace() {
        segments.insert(tok.parse().ok()?);
    }
    let next: u64 = lines.next()?.strip_prefix("next ")?.trim().parse().ok()?;
    if segments.iter().max().is_some_and(|&m| m >= next) {
        return None;
    }
    Some((segments, next))
}

/// One valid record located during a segment scan.
pub(crate) struct ScannedRecord {
    pub offset: u64,
    pub disk_len: u32,
    pub record: Record,
}

/// Everything a single segment scan produces. Shared by boot recovery
/// and the offline fsck scanner so the two cannot disagree about what
/// survives.
pub(crate) struct SegmentScan {
    pub records: Vec<ScannedRecord>,
    pub faults: Vec<SegmentFault>,
    /// Where the valid prefix ends. When `torn` is set, bytes past this
    /// offset belong to a torn tail write.
    pub good_end: u64,
    pub torn: bool,
}

/// Walks one segment's bytes, collecting valid records and typed
/// faults. `header_ok` is false when the caller already found the
/// segment header damaged (records are then recovered by magic-scan).
pub(crate) fn scan_segment(seq: u64, bytes: &[u8], header_ok: bool) -> SegmentScan {
    let mut records = Vec::new();
    let mut faults = Vec::new();
    if !header_ok {
        faults.push(SegmentFault::BadSegmentHeader { seq });
    }
    let mut off = if header_ok { SEGMENT_HEADER_BYTES } else { 0 };
    let mut good_end = off as u64;
    let mut torn = false;
    while off < bytes.len() {
        match parse_record(&bytes[off..]) {
            Parsed::Ok { record, disk_len } => {
                records.push(ScannedRecord {
                    offset: off as u64,
                    disk_len: disk_len as u32,
                    record,
                });
                off += disk_len;
                good_end = off as u64;
            }
            Parsed::Fault {
                fault: RecordFault::TornRecord,
                ..
            } => {
                // The record extends past EOF: the torn-write crash
                // window (or a corrupt length that points past the end
                // — indistinguishable, handled the same way).
                faults.push(SegmentFault::TornTail {
                    seq,
                    offset: off as u64,
                    dropped: (bytes.len() - off) as u64,
                });
                torn = true;
                break;
            }
            Parsed::Fault { fault, skip } if skip > 0 => {
                // Plausible length, failed verification: skip exactly
                // this record and keep scanning — mid-log damage stays
                // contained to the records it actually hit.
                faults.push(SegmentFault::CorruptRecord {
                    seq,
                    offset: off as u64,
                    fault,
                });
                off += skip;
                good_end = off as u64;
            }
            Parsed::Fault { .. } => {
                // No trustworthy length: resynchronize by scanning for
                // the next record magic.
                let magic = crate::record::RECORD_MAGIC.to_le_bytes();
                let from = off + 1;
                let next = bytes[from..]
                    .windows(4)
                    .position(|w| w == magic)
                    .map(|p| from + p);
                match next {
                    Some(n) => {
                        faults.push(SegmentFault::ResyncSkip {
                            seq,
                            offset: off as u64,
                            skipped: (n - off) as u64,
                        });
                        off = n;
                        good_end = off as u64;
                    }
                    None => {
                        faults.push(SegmentFault::TornTail {
                            seq,
                            offset: off as u64,
                            dropped: (bytes.len() - off) as u64,
                        });
                        torn = true;
                        break;
                    }
                }
            }
        }
    }
    SegmentScan {
        records,
        faults,
        good_end,
        torn,
    }
}

impl LogStore {
    /// Opens (or creates) the store, rebuilding the index by scanning
    /// every segment. Damage degrades to typed faults in the
    /// [`RecoveryReport`]; only environmental failures (I/O, allocation)
    /// are errors.
    pub fn open(config: StoreConfig) -> Result<LogStore, StoreError> {
        let dir = config.dir;
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let mut report = RecoveryReport::default();

        // Authoritative segment set: the manifest when it parses, the
        // directory listing otherwise. Replay order is by sequence
        // number either way, so the fallback is safe — at worst it
        // re-reads segments a crashed compaction already rewrote.
        let mut on_disk = BTreeSet::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err(&dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                // Leftover of a crashed atomic write: never authoritative.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if let Some(seq) = parse_segment_name(name) {
                on_disk.insert(seq);
            }
        }
        let manifest = fs::read_to_string(manifest_path(&dir))
            .ok()
            .and_then(|t| parse_manifest(&t));
        let (mut segments, mut next_seq) = match manifest {
            Some((listed, next)) => {
                let mut segs = BTreeSet::new();
                for &seq in &listed {
                    if on_disk.contains(&seq) {
                        segs.insert(seq);
                    } else {
                        report.faults.push(SegmentFault::MissingSegment { seq });
                    }
                }
                // Segments on disk but not in the manifest are leftovers
                // of a crashed compaction (renamed before the manifest
                // swap): the manifest is authoritative, drop them.
                for &seq in on_disk.difference(&listed) {
                    let _ = fs::remove_file(segment_path(&dir, seq));
                }
                (segs, next)
            }
            None => {
                if !on_disk.is_empty() {
                    report.faults.push(SegmentFault::ManifestFallback);
                }
                let next = on_disk.iter().max().map_or(1, |m| m + 1);
                (on_disk, next)
            }
        };

        // Replay every segment in sequence order.
        let mut index: HashMap<(String, u16), IndexEntry> = HashMap::new();
        let mut total_bytes = 0u64;
        let mut dead_bytes = 0u64;
        let segment_list: Vec<u64> = segments.iter().copied().collect();
        for (i, &seq) in segment_list.iter().enumerate() {
            let path = segment_path(&dir, seq);
            let bytes = read_file(&path)?;
            let header_ok = parse_segment_header(&bytes) == Some(seq);
            let scan = scan_segment(seq, &bytes, header_ok);
            report.segments_scanned += 1;
            for f in &scan.faults {
                if let SegmentFault::TornTail { dropped, .. } = f {
                    report.truncated_tail_bytes += dropped;
                }
            }
            report.faults.extend(scan.faults);
            let is_last = i == segment_list.len() - 1;
            let file_len = if scan.torn && is_last {
                // Truncate the crash window so the next append starts
                // at a clean record boundary.
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err(&path, e))?;
                f.set_len(scan.good_end).map_err(|e| io_err(&path, e))?;
                f.sync_all().map_err(|e| io_err(&path, e))?;
                scan.good_end
            } else {
                bytes.len() as u64
            };
            total_bytes += file_len;
            for sr in scan.records {
                report.records_replayed += 1;
                let slot = (sr.record.key.clone(), sr.record.shard_idx);
                let prior = match sr.record.kind {
                    RecordKind::Put => {
                        // Startup re-verifies checksums exactly like
                        // `list_shards`: the body hash already validated,
                        // so the payload FNV cached here is verified.
                        let payload_fnv = fnv1a(&sr.record.payload);
                        index.insert(
                            slot,
                            IndexEntry {
                                seq,
                                offset: sr.offset,
                                disk_len: sr.disk_len,
                                payload_len: sr.record.payload.len() as u32,
                                payload_fnv,
                                total_len: sr.record.total_len,
                                archive_fnv: sr.record.archive_fnv,
                                verified: true,
                            },
                        )
                    }
                    RecordKind::Tombstone => {
                        report.tombstones += 1;
                        dead_bytes += sr.disk_len as u64;
                        index.remove(&slot)
                    }
                };
                if let Some(old) = prior {
                    dead_bytes += old.disk_len as u64;
                }
            }
        }
        report.live_shards = index.len() as u64;

        // Open (or create) the active segment — the highest sequence.
        let (active_seq, active) = match segments.iter().max().copied() {
            Some(seq) => {
                let path = segment_path(&dir, seq);
                let f = OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(|e| io_err(&path, e))?;
                (seq, f)
            }
            None => {
                let seq = next_seq;
                next_seq += 1;
                let path = segment_path(&dir, seq);
                let mut f = OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(&path)
                    .map_err(|e| io_err(&path, e))?;
                f.write_all(&segment_header(seq))
                    .map_err(|e| io_err(&path, e))?;
                f.sync_all().map_err(|e| io_err(&path, e))?;
                segments.insert(seq);
                total_bytes += SEGMENT_HEADER_BYTES as u64;
                (seq, f)
            }
        };
        let active_len = active
            .metadata()
            .map_err(|e| io_err(&segment_path(&dir, active_seq), e))?
            .len();
        // Normalize the manifest so the next boot needs no fallback.
        write_atomic(
            &manifest_path(&dir),
            encode_manifest(&segments, next_seq).as_bytes(),
        )?;

        Ok(LogStore {
            dir,
            fsync: config.fsync,
            compact_at: config.compact_at.max(1),
            active,
            active_seq,
            active_len,
            next_seq,
            unsynced: 0,
            segments,
            readers: HashMap::new(),
            index,
            total_bytes,
            dead_bytes,
            recovery: report,
            runtime_faults: Vec::new(),
            corrupt_dropped: 0,
            compactions: 0,
        })
    }

    /// What the boot scan found (torn tails, corrupt records, …).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Faults found *after* boot by checksum-gated reads.
    pub fn runtime_faults(&self) -> &[SegmentFault] {
        &self.runtime_faults
    }

    /// Records dropped as corrupt since open (boot faults not included).
    pub fn corrupt_dropped(&self) -> u64 {
        self.corrupt_dropped
    }

    /// Number of live shards.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no live shards.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total segment bytes on disk.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes owned by superseded, tombstoned, or dropped records.
    pub fn dead_bytes(&self) -> u64 {
        self.dead_bytes
    }

    /// Compactions run since open.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Active segment count (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn push_runtime_fault(&mut self, fault: SegmentFault) {
        if self.runtime_faults.len() < MAX_RUNTIME_FAULTS {
            self.runtime_faults.push(fault);
        }
    }

    /// Rolls the active segment once it outgrows a quarter of the
    /// compaction budget, so compaction always has sealed segments to
    /// drop and no single segment grows unboundedly.
    fn roll_threshold(&self) -> u64 {
        (self.compact_at / 4).clamp(64 << 10, 64 << 20)
    }

    fn roll_active(&mut self) -> Result<(), StoreError> {
        self.active
            .sync_all()
            .map_err(|e| io_err(&segment_path(&self.dir, self.active_seq), e))?;
        let seq = self.next_seq;
        self.next_seq += 1;
        let path = segment_path(&self.dir, seq);
        let mut f = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        f.write_all(&segment_header(seq))
            .map_err(|e| io_err(&path, e))?;
        f.sync_all().map_err(|e| io_err(&path, e))?;
        self.segments.insert(seq);
        self.total_bytes += SEGMENT_HEADER_BYTES as u64;
        self.active = f;
        self.active_seq = seq;
        self.active_len = SEGMENT_HEADER_BYTES as u64;
        self.unsynced = 0;
        write_atomic(
            &manifest_path(&self.dir),
            encode_manifest(&self.segments, self.next_seq).as_bytes(),
        )
    }

    /// Appends one encoded record to the active segment and applies the
    /// fsync policy. Returns `(seq, offset)` of the record start.
    fn append(&mut self, encoded: &[u8]) -> Result<(u64, u64), StoreError> {
        if self.active_len >= self.roll_threshold() {
            self.roll_active()?;
        }
        let path = segment_path(&self.dir, self.active_seq);
        let offset = self.active_len;
        self.active
            .write_all(encoded)
            .map_err(|e| io_err(&path, e))?;
        self.active_len += encoded.len() as u64;
        self.total_bytes += encoded.len() as u64;
        self.unsynced += encoded.len() as u64;
        let sync = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryNBytes(n) => self.unsynced >= n,
            FsyncPolicy::Never => false,
        };
        if sync {
            self.active.sync_data().map_err(|e| io_err(&path, e))?;
            self.unsynced = 0;
        }
        Ok((self.active_seq, offset))
    }

    /// Inserts (or replaces) a stripe slot durably. `repair` marks a
    /// scrub re-replication in the record's flags.
    pub fn put(
        &mut self,
        key: &str,
        shard_idx: u16,
        bytes: &[u8],
        total_len: u64,
        archive_fnv: u64,
        repair: bool,
    ) -> Result<(), StoreError> {
        if key.len() > MAX_KEY_BYTES {
            return Err(StoreError::KeyTooLong { len: key.len() });
        }
        if bytes.len() > MAX_PAYLOAD_BYTES {
            return Err(StoreError::PayloadTooLarge { len: bytes.len() });
        }
        let record = Record::put(key, shard_idx, bytes, total_len, archive_fnv, repair);
        let mut encoded = Vec::new();
        encoded
            .try_reserve_exact(record.disk_len())
            .map_err(|_| StoreError::Alloc {
                bytes: record.disk_len(),
            })?;
        record.encode_into(&mut encoded);
        let payload_fnv = fnv1a(bytes);
        let (seq, offset) = self.append(&encoded)?;
        let old = self.index.insert(
            (key.to_string(), shard_idx),
            IndexEntry {
                seq,
                offset,
                disk_len: encoded.len() as u32,
                payload_len: bytes.len() as u32,
                payload_fnv,
                total_len,
                archive_fnv,
                // A write invalidates the cached verification: the next
                // inventory re-reads this record once, then re-caches.
                verified: false,
            },
        );
        if let Some(old) = old {
            self.dead_bytes += old.disk_len as u64;
        }
        self.maybe_compact()
    }

    /// Deletes a stripe slot by appending a tombstone. Deleting an
    /// absent slot is a no-op (no tombstone written).
    pub fn delete(&mut self, key: &str, shard_idx: u16) -> Result<(), StoreError> {
        let Some(old) = self.index.remove(&(key.to_string(), shard_idx)) else {
            return Ok(());
        };
        let encoded = Record::tombstone(key, shard_idx).encode();
        let tomb_len = encoded.len() as u64;
        self.append(&encoded)?;
        self.dead_bytes += old.disk_len as u64 + tomb_len;
        self.maybe_compact()
    }

    /// Reads one record's bytes back from its segment file.
    fn read_record_bytes(&mut self, entry: &IndexEntry) -> Result<Vec<u8>, StoreError> {
        let path = segment_path(&self.dir, entry.seq);
        let f = match self.readers.entry(entry.seq) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(File::open(&path).map_err(|e| io_err(&path, e))?)
            }
        };
        f.seek(SeekFrom::Start(entry.offset))
            .map_err(|e| io_err(&path, e))?;
        let len = entry.disk_len as usize;
        let mut buf = Vec::new();
        buf.try_reserve_exact(len)
            .map_err(|_| StoreError::Alloc { bytes: len })?;
        buf.resize(len, 0);
        f.read_exact(&mut buf).map_err(|e| io_err(&path, e))?;
        Ok(buf)
    }

    /// Re-reads and verifies the record behind an index entry. Returns
    /// the payload when everything checks out; `None` drops the entry
    /// (rot: counted, typed fault recorded, slot degrades to missing so
    /// anti-entropy re-replicates it).
    fn verified_payload(
        &mut self,
        key: &str,
        shard_idx: u16,
        entry: &IndexEntry,
    ) -> Result<Option<Vec<u8>>, StoreError> {
        let bytes = self.read_record_bytes(entry)?;
        let parsed = parse_record(&bytes);
        let payload = match parsed {
            Parsed::Ok { record, .. }
                if record.kind == RecordKind::Put
                    && record.key == key
                    && record.shard_idx == shard_idx
                    && fnv1a(&record.payload) == entry.payload_fnv =>
            {
                Some(record.payload)
            }
            Parsed::Ok { .. } => None, // index points at the wrong record
            Parsed::Fault { fault, .. } => {
                self.push_runtime_fault(SegmentFault::CorruptRecord {
                    seq: entry.seq,
                    offset: entry.offset,
                    fault,
                });
                None
            }
        };
        if payload.is_none() {
            self.index.remove(&(key.to_string(), shard_idx));
            self.dead_bytes += entry.disk_len as u64;
            self.corrupt_dropped += 1;
        }
        Ok(payload)
    }

    /// Fetches a stripe slot, checksum-gated: the record is re-read and
    /// verified against its trailer before a byte is returned, so a
    /// rotted shard surfaces as `None` (plus a typed fault), never as
    /// corrupt data.
    pub fn get(&mut self, key: &str, shard_idx: u16) -> Result<Option<StoredShard>, StoreError> {
        let Some(entry) = self.index.get(&(key.to_string(), shard_idx)).cloned() else {
            return Ok(None);
        };
        match self.verified_payload(key, shard_idx, &entry)? {
            Some(payload) => {
                if let Some(e) = self.index.get_mut(&(key.to_string(), shard_idx)) {
                    e.verified = true;
                }
                Ok(Some(StoredShard {
                    bytes: payload,
                    checksum: entry.payload_fnv,
                    total_len: entry.total_len,
                    archive_fnv: entry.archive_fnv,
                }))
            }
            None => Ok(None),
        }
    }

    /// Verifies every not-yet-verified record, drops rot (counted), and
    /// lists the survivors sorted by `(key, shard_idx)`. Entries whose
    /// verification is cached are listed without touching the disk, so
    /// repeated inventories of an unchanged node are O(index).
    pub fn verify_and_list(&mut self) -> Result<(Vec<ShardEntry>, u64), StoreError> {
        let unverified: Vec<(String, u16)> = self
            .index
            .iter()
            .filter(|(_, e)| !e.verified)
            .map(|(k, _)| k.clone())
            .collect();
        let mut dropped = 0u64;
        for (key, idx) in unverified {
            let entry = self.index[&(key.clone(), idx)].clone();
            match self.verified_payload(&key, idx, &entry)? {
                Some(_) => {
                    if let Some(e) = self.index.get_mut(&(key.clone(), idx)) {
                        e.verified = true;
                    }
                }
                None => dropped += 1,
            }
        }
        let mut entries: Vec<ShardEntry> = self
            .index
            .iter()
            .map(|((key, idx), e)| ShardEntry {
                key: key.clone(),
                shard_idx: *idx,
                len: e.payload_len as u64,
                checksum: e.payload_fnv,
                total_len: e.total_len,
                archive_fnv: e.archive_fnv,
            })
            .collect();
        entries.sort_by(|a, b| a.key.cmp(&b.key).then(a.shard_idx.cmp(&b.shard_idx)));
        Ok((entries, dropped))
    }

    fn maybe_compact(&mut self) -> Result<(), StoreError> {
        if self.total_bytes >= self.compact_at && self.dead_bytes * 4 >= self.total_bytes {
            self.compact_now()?;
        }
        Ok(())
    }

    /// Rewrites every live record into a fresh segment and swaps it in
    /// atomically: temp file → fsync → rename → manifest swap → old
    /// segments deleted. A crash at any point leaves a state the next
    /// boot reads correctly (the manifest decides which set is live; a
    /// renamed-but-unreferenced segment is garbage-collected, and the
    /// compacted segment's higher sequence number makes replay converge
    /// even from a directory-listing fallback).
    pub fn compact_now(&mut self) -> Result<(), StoreError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let final_path = segment_path(&self.dir, seq);
        let tmp = self.dir.join(format!("seg-{seq:08}.czl.tmp"));

        // Stable rewrite order so compaction output is deterministic.
        let mut slots: Vec<(String, u16)> = self.index.keys().cloned().collect();
        slots.sort();

        let mut out = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        out.write_all(&segment_header(seq))
            .map_err(|e| io_err(&tmp, e))?;
        let mut new_index: HashMap<(String, u16), IndexEntry> = HashMap::new();
        let mut offset = SEGMENT_HEADER_BYTES as u64;
        for (key, idx) in slots {
            let entry = self.index[&(key.clone(), idx)].clone();
            // Verification rides along for free: a record that rotted in
            // place is dropped here (typed fault already recorded) rather
            // than propagated into the fresh segment.
            let Some(payload) = self.verified_payload(&key, idx, &entry)? else {
                continue;
            };
            let record = Record {
                kind: RecordKind::Put,
                flags: 0,
                key: key.clone(),
                shard_idx: idx,
                total_len: entry.total_len,
                archive_fnv: entry.archive_fnv,
                payload,
            };
            let encoded = record.encode();
            out.write_all(&encoded).map_err(|e| io_err(&tmp, e))?;
            new_index.insert(
                (key, idx),
                IndexEntry {
                    seq,
                    offset,
                    disk_len: encoded.len() as u32,
                    payload_len: entry.payload_len,
                    payload_fnv: entry.payload_fnv,
                    total_len: entry.total_len,
                    archive_fnv: entry.archive_fnv,
                    verified: true,
                },
            );
            offset += encoded.len() as u64;
        }
        out.sync_all().map_err(|e| io_err(&tmp, e))?;
        drop(out);
        fs::rename(&tmp, &final_path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            io_err(&final_path, e)
        })?;
        sync_dir(&self.dir);

        let old_segments: Vec<u64> = self.segments.iter().copied().collect();
        self.segments = BTreeSet::from([seq]);
        write_atomic(
            &manifest_path(&self.dir),
            encode_manifest(&self.segments, self.next_seq).as_bytes(),
        )?;
        for old in old_segments {
            let _ = fs::remove_file(segment_path(&self.dir, old));
        }
        sync_dir(&self.dir);
        self.readers.clear();
        self.index = new_index;
        self.active = OpenOptions::new()
            .append(true)
            .open(&final_path)
            .map_err(|e| io_err(&final_path, e))?;
        self.active_seq = seq;
        self.active_len = offset;
        self.total_bytes = offset;
        self.dead_bytes = 0;
        self.unsynced = 0;
        self.compactions += 1;
        Ok(())
    }

    /// Flushes the active segment to stable storage regardless of the
    /// fsync policy.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.active
            .sync_data()
            .map_err(|e| io_err(&segment_path(&self.dir, self.active_seq), e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Drops every slot *and every segment file* — the wiped-disk test
    /// hook. The store comes back empty and usable.
    pub fn clear(&mut self) -> Result<(), StoreError> {
        self.readers.clear();
        for &seq in &self.segments.clone() {
            let _ = fs::remove_file(segment_path(&self.dir, seq));
        }
        let _ = fs::remove_file(manifest_path(&self.dir));
        sync_dir(&self.dir);
        self.index.clear();
        self.segments.clear();
        self.total_bytes = 0;
        self.dead_bytes = 0;
        let seq = self.next_seq;
        self.next_seq += 1;
        let path = segment_path(&self.dir, seq);
        let mut f = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        f.write_all(&segment_header(seq))
            .map_err(|e| io_err(&path, e))?;
        f.sync_all().map_err(|e| io_err(&path, e))?;
        self.segments.insert(seq);
        self.active = f;
        self.active_seq = seq;
        self.active_len = SEGMENT_HEADER_BYTES as u64;
        self.total_bytes = SEGMENT_HEADER_BYTES as u64;
        self.unsynced = 0;
        write_atomic(
            &manifest_path(&self.dir),
            encode_manifest(&self.segments, self.next_seq).as_bytes(),
        )
    }
}

impl Drop for LogStore {
    fn drop(&mut self) {
        // Best-effort final flush; the recovery scan covers the rest.
        let _ = self.active.sync_data();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("cuszp-store-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path) -> StoreConfig {
        StoreConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Never,
            compact_at: 1 << 20,
        }
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let mut s = LogStore::open(config(&dir)).unwrap();
            s.put("a", 0, b"hello", 5, 42, false).unwrap();
            s.put("a", 1, b"world", 5, 42, false).unwrap();
            let got = s.get("a", 1).unwrap().unwrap();
            assert_eq!(got.bytes, b"world");
            assert_eq!(got.total_len, 5);
            assert_eq!(got.archive_fnv, 42);
            assert!(s.get("a", 2).unwrap().is_none());
            assert_eq!(s.len(), 2);
        }
        // Everything survives a clean reopen.
        let mut s = LogStore::open(config(&dir)).unwrap();
        assert!(s.recovery_report().is_clean(), "{}", s.recovery_report());
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("a", 0).unwrap().unwrap().bytes, b"hello");
        assert_eq!(s.get("a", 1).unwrap().unwrap().bytes, b"world");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_and_tombstone_semantics_survive_reopen() {
        let dir = temp_dir("tombstone");
        {
            let mut s = LogStore::open(config(&dir)).unwrap();
            s.put("k", 0, b"old", 3, 1, false).unwrap();
            s.put("k", 0, b"newer", 5, 2, false).unwrap();
            s.put("gone", 1, b"bye", 3, 3, false).unwrap();
            s.delete("gone", 1).unwrap();
            s.delete("never-existed", 7).unwrap();
            assert_eq!(s.get("k", 0).unwrap().unwrap().bytes, b"newer");
            assert!(s.get("gone", 1).unwrap().is_none());
            assert_eq!(s.len(), 1);
        }
        let mut s = LogStore::open(config(&dir)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get("k", 0).unwrap().unwrap().bytes, b"newer");
        assert!(s.get("gone", 1).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_and_list_is_sorted_and_caches_verification() {
        let dir = temp_dir("list");
        let mut s = LogStore::open(config(&dir)).unwrap();
        s.put("b", 1, b"x", 1, 0, false).unwrap();
        s.put("a", 2, b"y", 1, 0, false).unwrap();
        s.put("a", 0, b"z", 1, 0, false).unwrap();
        let (entries, dropped) = s.verify_and_list().unwrap();
        assert_eq!(dropped, 0);
        let order: Vec<(String, u16)> = entries
            .iter()
            .map(|e| (e.key.clone(), e.shard_idx))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a".to_string(), 0),
                ("a".to_string(), 2),
                ("b".to_string(), 1)
            ]
        );
        assert_eq!(entries[0].checksum, fnv1a(b"z"));
        // Second pass: everything cached, nothing dropped.
        let (entries2, dropped2) = s.verify_and_list().unwrap();
        assert_eq!(dropped2, 0);
        assert_eq!(entries, entries2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = temp_dir("torn");
        {
            let mut s = LogStore::open(config(&dir)).unwrap();
            s.put("whole", 0, &[7u8; 200], 200, 9, false).unwrap();
            s.put("torn", 0, &[8u8; 200], 200, 9, false).unwrap();
        }
        // Chop the last record mid-payload: the kill -9 crash window.
        let seg = segment_path(&dir, 1);
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 60).unwrap();
        drop(f);

        let mut s = LogStore::open(config(&dir)).unwrap();
        let report = s.recovery_report().clone();
        assert_eq!(report.live_shards, 1);
        assert!(
            report
                .faults
                .iter()
                .any(|f| matches!(f, SegmentFault::TornTail { .. })),
            "expected a torn-tail fault, got {:?}",
            report.faults
        );
        assert_eq!(s.get("whole", 0).unwrap().unwrap().bytes, vec![7u8; 200]);
        assert!(s.get("torn", 0).unwrap().is_none());
        // The store is writable again after truncation.
        s.put("torn", 0, &[9u8; 50], 50, 9, false).unwrap();
        assert_eq!(s.get("torn", 0).unwrap().unwrap().bytes, vec![9u8; 50]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_bit_flip_skips_only_the_damaged_record() {
        let dir = temp_dir("flip");
        let first_end;
        {
            let mut s = LogStore::open(config(&dir)).unwrap();
            s.put("victim", 0, &[1u8; 300], 300, 1, false).unwrap();
            first_end = s.active_len;
            s.put("survivor", 0, &[2u8; 300], 300, 2, false).unwrap();
        }
        // Flip a payload bit inside the *first* record.
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let mid = (SEGMENT_HEADER_BYTES as u64 + first_end) as usize / 2;
        bytes[mid] ^= 0x10;
        fs::write(&seg, &bytes).unwrap();

        let mut s = LogStore::open(config(&dir)).unwrap();
        assert!(
            s.get("victim", 0).unwrap().is_none(),
            "corrupt record must drop"
        );
        assert_eq!(
            s.get("survivor", 0).unwrap().unwrap().bytes,
            vec![2u8; 300],
            "record after the damage must survive bit-exact"
        );
        assert!(s
            .recovery_report()
            .faults
            .iter()
            .any(|f| matches!(f, SegmentFault::CorruptRecord { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_the_live_map_and_drops_dead_bytes() {
        let dir = temp_dir("compact");
        let mut s = LogStore::open(StoreConfig {
            dir: dir.clone(),
            fsync: FsyncPolicy::Never,
            compact_at: 1 << 30, // no auto trigger; we call compact_now
        })
        .unwrap();
        for i in 0..20u16 {
            s.put("k", i, &vec![i as u8; 500], 500, i as u64, false)
                .unwrap();
        }
        for i in 0..10u16 {
            s.put("k", i, &vec![0xEEu8; 400], 400, 99, false).unwrap(); // overwrite
        }
        for i in 15..20u16 {
            s.delete("k", i).unwrap();
        }
        let (before, _) = s.verify_and_list().unwrap();
        let bytes_before = s.total_bytes();
        s.compact_now().unwrap();
        assert!(s.total_bytes() < bytes_before);
        assert_eq!(s.dead_bytes(), 0);
        assert_eq!(s.segment_count(), 1);
        let (after, dropped) = s.verify_and_list().unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(before, after, "compaction must not change the live map");
        // And the compacted state survives reopen.
        drop(s);
        let mut s = LogStore::open(config(&dir)).unwrap();
        assert!(s.recovery_report().is_clean());
        let (reopened, _) = s.verify_and_list().unwrap();
        assert_eq!(before, reopened);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_trigger_compacts_automatically() {
        let dir = temp_dir("autocompact");
        let mut s = LogStore::open(StoreConfig {
            dir: dir.clone(),
            fsync: FsyncPolicy::Never,
            compact_at: 256 << 10,
        })
        .unwrap();
        // Overwrite one hot slot until the dead fraction trips the
        // trigger. 2000 × ~300 B ≈ 600 KiB of log, nearly all dead.
        for round in 0..2000u32 {
            s.put("hot", 0, &round.to_le_bytes().repeat(64), 256, 7, false)
                .unwrap();
        }
        assert!(s.compactions() > 0, "size trigger never fired");
        assert_eq!(s.len(), 1);
        let got = s.get("hot", 0).unwrap().unwrap();
        assert_eq!(got.bytes, 1999u32.to_le_bytes().repeat(64));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_and_replay_in_order() {
        let dir = temp_dir("roll");
        let mut s = LogStore::open(StoreConfig {
            dir: dir.clone(),
            fsync: FsyncPolicy::EveryNBytes(1 << 20),
            compact_at: 1 << 30,
        })
        .unwrap();
        // roll threshold = clamp(2^30/4, 64 KiB, 64 MiB) — too big to
        // trip here, so force rolls directly to test multi-segment
        // replay.
        s.put("a", 0, &[1u8; 100], 100, 1, false).unwrap();
        s.roll_active().unwrap();
        s.put("a", 0, &[2u8; 100], 100, 2, false).unwrap();
        s.roll_active().unwrap();
        s.put("b", 0, &[3u8; 100], 100, 3, false).unwrap();
        assert_eq!(s.segment_count(), 3);
        drop(s);
        let mut s = LogStore::open(config(&dir)).unwrap();
        assert!(s.recovery_report().is_clean());
        assert_eq!(s.get("a", 0).unwrap().unwrap().bytes, vec![2u8; 100]);
        assert_eq!(s.get("b", 0).unwrap().unwrap().bytes, vec![3u8; 100]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_wipes_disk_and_store_stays_usable() {
        let dir = temp_dir("clear");
        let mut s = LogStore::open(config(&dir)).unwrap();
        s.put("a", 0, b"x", 1, 0, false).unwrap();
        s.clear().unwrap();
        assert!(s.is_empty());
        assert!(s.get("a", 0).unwrap().is_none());
        s.put("b", 0, b"y", 1, 0, false).unwrap();
        drop(s);
        let mut s = LogStore::open(config(&dir)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get("b", 0).unwrap().unwrap().bytes, b"y");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_corruption_falls_back_to_directory_listing() {
        let dir = temp_dir("manifest");
        {
            let mut s = LogStore::open(config(&dir)).unwrap();
            s.put("a", 0, b"kept", 4, 1, false).unwrap();
        }
        fs::write(manifest_path(&dir), b"not a manifest at all").unwrap();
        let mut s = LogStore::open(config(&dir)).unwrap();
        assert!(s
            .recovery_report()
            .faults
            .iter()
            .any(|f| matches!(f, SegmentFault::ManifestFallback)));
        assert_eq!(s.get("a", 0).unwrap().unwrap().bytes, b"kept");
        let _ = fs::remove_dir_all(&dir);
    }
}
