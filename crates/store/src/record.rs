//! The on-disk record codec.
//!
//! Every mutation of the store is one record appended to the active
//! segment:
//!
//! ```text
//! offset  bytes  field
//! 0       4      record magic "CZLR"
//! 4       4      record_len (u32 LE): bytes of body + trailer
//! 8       1      kind (1 = put, 2 = tombstone)
//! 9       1      flags (bit0 = scrub re-replication)
//! 10      2      key_len (u16 LE)
//! 12      2      shard_idx (u16 LE)
//! 14      8      total_len (u64 LE)   — whole-archive length
//! 22      8      archive_fnv (u64 LE) — whole-archive FNV-1a
//! 30      4      payload_len (u32 LE)
//! 34      …      key bytes (UTF-8)
//! …       …      payload bytes (the shard)
//! end-8   8      trailer: FNV-1a (u64 LE) over the body (offsets 8..end-8)
//! ```
//!
//! The trailer covers everything after `record_len`, so a bit flip
//! anywhere in a record — metadata or payload — fails verification and
//! the record degrades to a typed fault instead of serving wrong bytes.
//! Parsing is total: any byte sequence classifies as either a valid
//! record or exactly one [`RecordFault`]; nothing panics and nothing
//! allocates before the lengths have been bounds-checked.

use crate::fnv1a;

/// First four bytes of every record.
pub const RECORD_MAGIC: u32 = u32::from_le_bytes(*b"CZLR");

/// First four bytes of every segment file (followed by a format version
/// and the segment's sequence number).
pub const SEGMENT_MAGIC: u32 = u32::from_le_bytes(*b"CZLS");

/// Segment format version written by this crate.
pub const SEGMENT_VERSION: u32 = 1;

/// Bytes of the per-segment header: magic + version + seq.
pub const SEGMENT_HEADER_BYTES: usize = 4 + 4 + 8;

/// Bytes before the body: magic + record_len.
pub const RECORD_PREFIX_BYTES: usize = 8;

/// Fixed body bytes before the variable key/payload tail.
pub const BODY_FIXED_BYTES: usize = 1 + 1 + 2 + 2 + 8 + 8 + 4;

/// Trailer bytes (the FNV-1a checksum).
pub const TRAILER_BYTES: usize = 8;

/// Key length cap — matches the CSRP shard-key cap so any key the wire
/// accepts fits in a record.
pub const MAX_KEY_BYTES: usize = 4096;

/// Payload cap per record (mirrors the wire frame cap).
pub const MAX_PAYLOAD_BYTES: usize = 1 << 30;

/// Record flag: this put re-replicated a shard scrub found missing.
pub const FLAG_REPAIR: u8 = 0x01;

const KNOWN_FLAGS: u8 = FLAG_REPAIR;

/// What a record does to its `(key, shard_idx)` slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Stores shard bytes (overwriting any prior record for the slot).
    Put = 1,
    /// Deletes the slot; compaction drops both the tombstone and the
    /// records it shadows.
    Tombstone = 2,
}

/// One decoded record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub kind: RecordKind,
    pub flags: u8,
    pub key: String,
    pub shard_idx: u16,
    /// Length of the whole archive the stripe encodes (0 for tombstones).
    pub total_len: u64,
    /// FNV-1a of the whole archive (0 for tombstones).
    pub archive_fnv: u64,
    /// The shard bytes (empty for tombstones).
    pub payload: Vec<u8>,
}

/// Why a stretch of segment bytes is not a valid record. Every parse
/// failure maps to exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordFault {
    /// The bytes at this offset do not begin with the record magic.
    BadMagic,
    /// `record_len` is shorter than the smallest possible record or
    /// larger than the format allows — the header itself is damaged.
    ImplausibleLength,
    /// The record extends past the end of the segment (a torn write at
    /// the tail, or a corrupted length mid-log).
    TornRecord,
    /// Lengths are structurally inconsistent (key/payload lengths do
    /// not add up to `record_len`, unknown kind or flags).
    MalformedBody,
    /// The FNV-1a trailer does not match the body bytes.
    ChecksumMismatch,
    /// The key bytes are not UTF-8.
    BadKey,
}

impl std::fmt::Display for RecordFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RecordFault::BadMagic => "bad record magic",
            RecordFault::ImplausibleLength => "implausible record length",
            RecordFault::TornRecord => "record torn at segment end",
            RecordFault::MalformedBody => "malformed record body",
            RecordFault::ChecksumMismatch => "record checksum mismatch",
            RecordFault::BadKey => "record key is not UTF-8",
        };
        f.write_str(s)
    }
}

impl Record {
    /// A put record.
    pub fn put(
        key: &str,
        shard_idx: u16,
        payload: &[u8],
        total_len: u64,
        archive_fnv: u64,
        repair: bool,
    ) -> Record {
        Record {
            kind: RecordKind::Put,
            flags: if repair { FLAG_REPAIR } else { 0 },
            key: key.to_string(),
            shard_idx,
            total_len,
            archive_fnv,
            payload: payload.to_vec(),
        }
    }

    /// A tombstone for the slot.
    pub fn tombstone(key: &str, shard_idx: u16) -> Record {
        Record {
            kind: RecordKind::Tombstone,
            flags: 0,
            key: key.to_string(),
            shard_idx,
            total_len: 0,
            archive_fnv: 0,
            payload: Vec::new(),
        }
    }

    /// Encoded size on disk: prefix + body + trailer.
    pub fn disk_len(&self) -> usize {
        RECORD_PREFIX_BYTES + BODY_FIXED_BYTES + self.key.len() + self.payload.len() + TRAILER_BYTES
    }

    /// Serializes the record into `out` (one contiguous append).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let body_len = BODY_FIXED_BYTES + self.key.len() + self.payload.len();
        let record_len = (body_len + TRAILER_BYTES) as u32;
        out.reserve(self.disk_len());
        out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        out.extend_from_slice(&record_len.to_le_bytes());
        let body_start = out.len();
        out.push(self.kind as u8);
        out.push(self.flags);
        out.extend_from_slice(&(self.key.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.shard_idx.to_le_bytes());
        out.extend_from_slice(&self.total_len.to_le_bytes());
        out.extend_from_slice(&self.archive_fnv.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(self.key.as_bytes());
        out.extend_from_slice(&self.payload);
        let trailer = fnv1a(&out[body_start..]);
        out.extend_from_slice(&trailer.to_le_bytes());
    }

    /// The record as a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// Outcome of parsing the bytes at one record boundary.
#[derive(Debug)]
pub enum Parsed {
    /// A valid record occupying `disk_len` bytes.
    Ok { record: Record, disk_len: usize },
    /// No valid record here; `skip` is the parser's best guess at how
    /// many bytes to advance before trying again (0 means "resync by
    /// scanning for the next magic").
    Fault { fault: RecordFault, skip: usize },
}

/// Parses one record at the start of `bytes` (typically a suffix of a
/// segment). Total: never panics, never allocates unless the checksum
/// has already validated the lengths it allocates for.
pub fn parse_record(bytes: &[u8]) -> Parsed {
    if bytes.len() < RECORD_PREFIX_BYTES {
        return Parsed::Fault {
            fault: RecordFault::TornRecord,
            skip: bytes.len(),
        };
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != RECORD_MAGIC {
        return Parsed::Fault {
            fault: RecordFault::BadMagic,
            skip: 0,
        };
    }
    let record_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let min_len = BODY_FIXED_BYTES + TRAILER_BYTES;
    let max_len = BODY_FIXED_BYTES + MAX_KEY_BYTES + MAX_PAYLOAD_BYTES + TRAILER_BYTES;
    if !(min_len..=max_len).contains(&record_len) {
        return Parsed::Fault {
            fault: RecordFault::ImplausibleLength,
            skip: 0,
        };
    }
    if bytes.len() < RECORD_PREFIX_BYTES + record_len {
        return Parsed::Fault {
            fault: RecordFault::TornRecord,
            skip: bytes.len(),
        };
    }
    let body = &bytes[RECORD_PREFIX_BYTES..RECORD_PREFIX_BYTES + record_len - TRAILER_BYTES];
    let trailer_at = RECORD_PREFIX_BYTES + record_len - TRAILER_BYTES;
    let stored = u64::from_le_bytes(bytes[trailer_at..trailer_at + 8].try_into().unwrap());
    if fnv1a(body) != stored {
        // The length fields are covered by the (failed) checksum, so the
        // skip distance cannot be trusted either — but a wrong skip only
        // costs a magic-resync, while a right one recovers alignment.
        return Parsed::Fault {
            fault: RecordFault::ChecksumMismatch,
            skip: RECORD_PREFIX_BYTES + record_len,
        };
    }
    // Checksum holds: the body is exactly what was written. Structural
    // inconsistencies past this point mean the *writer* was broken.
    let kind = match body[0] {
        1 => RecordKind::Put,
        2 => RecordKind::Tombstone,
        _ => {
            return Parsed::Fault {
                fault: RecordFault::MalformedBody,
                skip: RECORD_PREFIX_BYTES + record_len,
            }
        }
    };
    let flags = body[1];
    let key_len = u16::from_le_bytes(body[2..4].try_into().unwrap()) as usize;
    let shard_idx = u16::from_le_bytes(body[4..6].try_into().unwrap());
    let total_len = u64::from_le_bytes(body[6..14].try_into().unwrap());
    let archive_fnv = u64::from_le_bytes(body[14..22].try_into().unwrap());
    let payload_len = u32::from_le_bytes(body[22..26].try_into().unwrap()) as usize;
    let malformed = Parsed::Fault {
        fault: RecordFault::MalformedBody,
        skip: RECORD_PREFIX_BYTES + record_len,
    };
    if flags & !KNOWN_FLAGS != 0
        || key_len > MAX_KEY_BYTES
        || payload_len > MAX_PAYLOAD_BYTES
        || BODY_FIXED_BYTES + key_len + payload_len != body.len()
        || (kind == RecordKind::Tombstone && payload_len != 0)
    {
        return malformed;
    }
    let key_bytes = &body[BODY_FIXED_BYTES..BODY_FIXED_BYTES + key_len];
    let Ok(key) = std::str::from_utf8(key_bytes) else {
        return Parsed::Fault {
            fault: RecordFault::BadKey,
            skip: RECORD_PREFIX_BYTES + record_len,
        };
    };
    Parsed::Ok {
        record: Record {
            kind,
            flags,
            key: key.to_string(),
            shard_idx,
            total_len,
            archive_fnv,
            payload: body[BODY_FIXED_BYTES + key_len..].to_vec(),
        },
        disk_len: RECORD_PREFIX_BYTES + record_len,
    }
}

/// Encodes a segment header for sequence number `seq`.
pub fn segment_header(seq: u64) -> [u8; SEGMENT_HEADER_BYTES] {
    let mut h = [0u8; SEGMENT_HEADER_BYTES];
    h[0..4].copy_from_slice(&SEGMENT_MAGIC.to_le_bytes());
    h[4..8].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&seq.to_le_bytes());
    h
}

/// Validates a segment header, returning the sequence number it claims.
pub fn parse_segment_header(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < SEGMENT_HEADER_BYTES {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if magic != SEGMENT_MAGIC || version != SEGMENT_VERSION {
        return None;
    }
    Some(u64::from_le_bytes(bytes[8..16].try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_round_trips() {
        let r = Record::put(
            "climate/arch-7",
            3,
            b"shard bytes here",
            123_456,
            0xABCD,
            true,
        );
        let bytes = r.encode();
        assert_eq!(bytes.len(), r.disk_len());
        match parse_record(&bytes) {
            Parsed::Ok { record, disk_len } => {
                assert_eq!(record, r);
                assert_eq!(disk_len, bytes.len());
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn tombstone_round_trips() {
        let r = Record::tombstone("k", 9);
        match parse_record(&r.encode()) {
            Parsed::Ok { record, .. } => assert_eq!(record, r),
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let r = Record::put("key", 0, b"payload", 7, 42, false);
        let clean = r.encode();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut damaged = clean.clone();
                damaged[byte] ^= 1 << bit;
                match parse_record(&damaged) {
                    Parsed::Ok { record, .. } => {
                        panic!("flip at byte {byte} bit {bit} parsed as valid: {record:?}")
                    }
                    Parsed::Fault { .. } => {}
                }
            }
        }
    }

    #[test]
    fn truncation_at_every_offset_is_torn_or_fault() {
        let r = Record::put("key", 1, &[0xAA; 64], 64, 1, false);
        let clean = r.encode();
        for cut in 0..clean.len() {
            match parse_record(&clean[..cut]) {
                Parsed::Ok { .. } => panic!("truncation to {cut} bytes parsed as valid"),
                Parsed::Fault { .. } => {}
            }
        }
    }

    #[test]
    fn segment_header_round_trips() {
        let h = segment_header(42);
        assert_eq!(parse_segment_header(&h), Some(42));
        let mut bad = h;
        bad[0] ^= 1;
        assert_eq!(parse_segment_header(&bad), None);
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        let mut rng = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for len in [0usize, 1, 7, 8, 9, 33, 256, 4096] {
            let bytes: Vec<u8> = (0..len).map(|_| rng() as u8).collect();
            let _ = parse_record(&bytes);
        }
    }
}
