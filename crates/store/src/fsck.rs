//! Offline store inspection: the scanner behind `cuszp store-fsck`.
//!
//! Runs the *same* segment scan as boot recovery ([`scan_segment`]) but
//! read-only — nothing is truncated, deleted, or rewritten — and
//! reports every record individually: live, superseded, tombstone, or
//! damaged. The exit taxonomy mirrors archive `fsck` (PR 4):
//!
//! - `0` — every segment scanned clean, every record verified;
//! - `1` — damage found, but of the kind the cluster heals
//!   (`cluster-scrub` re-replicates dropped shards; a torn tail is
//!   truncated at the next boot);
//! - `2` — the directory itself is unreadable (I/O / allocation
//!   failure), nothing can be said about the data.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::log::{scan_segment, SegmentFault};
use crate::record::{parse_segment_header, RecordKind};
use crate::StoreError;

/// What one record (or one damaged region) amounts to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordStatus {
    /// The newest put for its `(key, shard_idx)` slot: served on read.
    Live,
    /// A valid put shadowed by a later put or tombstone.
    Superseded,
    /// A delete marker.
    Tombstone,
    /// Bytes that failed validation; the typed fault says how.
    Damaged(SegmentFault),
}

impl std::fmt::Display for RecordStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordStatus::Live => write!(f, "live"),
            RecordStatus::Superseded => write!(f, "superseded"),
            RecordStatus::Tombstone => write!(f, "tombstone"),
            RecordStatus::Damaged(fault) => write!(f, "DAMAGED: {fault}"),
        }
    }
}

/// One row of the per-record report.
#[derive(Debug, Clone)]
pub struct RecordReport {
    /// Byte offset of the record (or damaged region) in its segment.
    pub offset: u64,
    /// The slot, when the record parsed well enough to have one.
    pub key: Option<(String, u16)>,
    /// Payload bytes (0 for tombstones and damage).
    pub payload_len: u64,
    pub status: RecordStatus,
}

/// Everything found in one segment file.
#[derive(Debug, Clone)]
pub struct SegmentReport {
    pub seq: u64,
    pub path: PathBuf,
    pub bytes: u64,
    /// Records and damaged regions, in file order.
    pub records: Vec<RecordReport>,
}

/// The whole-directory report.
#[derive(Debug, Clone, Default)]
pub struct DirReport {
    pub segments: Vec<SegmentReport>,
    /// Directory-level faults (manifest fallback, missing segments).
    pub dir_faults: Vec<SegmentFault>,
    pub live_shards: u64,
    pub superseded: u64,
    pub tombstones: u64,
    pub damaged: u64,
}

impl DirReport {
    /// True when no fault of any kind was found.
    pub fn is_clean(&self) -> bool {
        self.damaged == 0 && self.dir_faults.is_empty()
    }

    /// The PR 4 exit taxonomy: `0` clean, `1` repairable-via-scrub.
    /// (`2` unreadable is the `Err` arm of [`scan_dir`] — if the report
    /// exists at all, the directory was readable.)
    pub fn exit_code(&self) -> i32 {
        if self.is_clean() {
            0
        } else {
            1
        }
    }
}

/// Scans a store directory read-only and reports per-record status.
/// `Err` means the directory itself could not be read (exit 2 in the
/// CLI taxonomy); damage *inside* readable segments is never an error.
pub fn scan_dir(dir: &Path) -> Result<DirReport, StoreError> {
    let io = |e: std::io::Error| StoreError::Io {
        path: dir.display().to_string(),
        err: e,
    };
    let mut report = DirReport::default();

    // Segment set: manifest when valid, directory listing otherwise —
    // the same precedence as boot, minus any mutation (tmp files and
    // orphan segments are reported, not deleted).
    let mut on_disk = Vec::new();
    for entry in fs::read_dir(dir).map_err(io)? {
        let entry = entry.map_err(io)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = super::log::parse_segment_name(name) {
            on_disk.push(seq);
        }
    }
    on_disk.sort_unstable();
    let manifest = fs::read_to_string(dir.join("MANIFEST"))
        .ok()
        .and_then(|t| super::log::parse_manifest(&t));
    let sequence: Vec<u64> = match &manifest {
        Some((listed, _)) => {
            for &seq in listed {
                if !on_disk.contains(&seq) {
                    report.dir_faults.push(SegmentFault::MissingSegment { seq });
                }
            }
            listed
                .iter()
                .copied()
                .filter(|s| on_disk.contains(s))
                .collect()
        }
        None => {
            if !on_disk.is_empty() {
                report.dir_faults.push(SegmentFault::ManifestFallback);
            }
            on_disk.clone()
        }
    };

    // Pass 1: scan every segment, remembering each valid record.
    struct Scanned {
        seq: u64,
        path: PathBuf,
        bytes: u64,
        records: Vec<(u64, RecordKind, String, u16, u64)>, // offset, kind, key, idx, payload_len
        faults: Vec<(u64, SegmentFault)>,                  // offset, fault
    }
    let mut scans = Vec::new();
    // Final owner of each slot across the whole log (replay order).
    let mut winner: HashMap<(String, u16), (u64, u64, RecordKind)> = HashMap::new();
    for &seq in &sequence {
        let path = dir.join(format!("seg-{seq:08}.czl"));
        let bytes = super::log::read_file(&path)?;
        let header_ok = parse_segment_header(&bytes) == Some(seq);
        let scan = scan_segment(seq, &bytes, header_ok);
        let mut records = Vec::new();
        for sr in &scan.records {
            let slot = (sr.record.key.clone(), sr.record.shard_idx);
            winner.insert(slot, (seq, sr.offset, sr.record.kind));
            records.push((
                sr.offset,
                sr.record.kind,
                sr.record.key.clone(),
                sr.record.shard_idx,
                sr.record.payload.len() as u64,
            ));
        }
        let faults = scan
            .faults
            .iter()
            .map(|f| {
                let offset = match f {
                    SegmentFault::TornTail { offset, .. }
                    | SegmentFault::CorruptRecord { offset, .. }
                    | SegmentFault::ResyncSkip { offset, .. } => *offset,
                    _ => 0,
                };
                (offset, f.clone())
            })
            .collect();
        scans.push(Scanned {
            seq,
            path,
            bytes: bytes.len() as u64,
            records,
            faults,
        });
    }

    // Pass 2: classify each record against the final slot owners.
    for scan in scans {
        let mut rows = Vec::new();
        for (offset, kind, key, idx, payload_len) in scan.records {
            let status = match kind {
                RecordKind::Tombstone => {
                    report.tombstones += 1;
                    RecordStatus::Tombstone
                }
                RecordKind::Put => {
                    let slot = (key.clone(), idx);
                    if winner.get(&slot) == Some(&(scan.seq, offset, RecordKind::Put)) {
                        report.live_shards += 1;
                        RecordStatus::Live
                    } else {
                        report.superseded += 1;
                        RecordStatus::Superseded
                    }
                }
            };
            rows.push(RecordReport {
                offset,
                key: Some((key, idx)),
                payload_len,
                status,
            });
        }
        for (offset, fault) in scan.faults {
            report.damaged += 1;
            rows.push(RecordReport {
                offset,
                key: None,
                payload_len: 0,
                status: RecordStatus::Damaged(fault),
            });
        }
        rows.sort_by_key(|r| r.offset);
        report.segments.push(SegmentReport {
            seq: scan.seq,
            path: scan.path,
            bytes: scan.bytes,
            records: rows,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FsyncPolicy, LogStore, StoreConfig};
    use std::fs::OpenOptions;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("cuszp-fsck-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn populated(dir: &Path) {
        let mut s = LogStore::open(StoreConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Never,
            compact_at: 1 << 30,
        })
        .unwrap();
        s.put("a", 0, &[1u8; 128], 128, 1, false).unwrap();
        s.put("a", 0, &[2u8; 128], 128, 2, false).unwrap(); // supersedes
        s.put("b", 1, &[3u8; 64], 64, 3, false).unwrap();
        s.put("c", 0, &[4u8; 64], 64, 4, false).unwrap();
        s.delete("c", 0).unwrap();
    }

    #[test]
    fn clean_store_scans_clean_with_correct_classes() {
        let dir = temp_dir("clean");
        populated(&dir);
        let report = scan_dir(&dir).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.exit_code(), 0);
        assert_eq!(report.live_shards, 2);
        assert_eq!(report.superseded, 2); // old "a" + tombstoned "c"
        assert_eq!(report.tombstones, 1);
        assert_eq!(report.damaged, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_is_reported_without_mutating_the_file() {
        let dir = temp_dir("damaged");
        populated(&dir);
        let seg = dir.join("seg-00000001.czl");
        let before = fs::read(&seg).unwrap();
        // Flip a bit in the middle of the log.
        let mut bytes = before.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();

        let report = scan_dir(&dir).unwrap();
        assert_eq!(report.exit_code(), 1);
        assert!(report.damaged > 0);
        assert!(report.segments[0]
            .records
            .iter()
            .any(|r| matches!(r.status, RecordStatus::Damaged(_))));
        // fsck is read-only: the damaged file is byte-identical after.
        assert_eq!(fs::read(&seg).unwrap(), bytes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_reports_repairable_and_leaves_file_alone() {
        let dir = temp_dir("torn");
        populated(&dir);
        let seg = dir.join("seg-00000001.czl");
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let report = scan_dir(&dir).unwrap();
        assert_eq!(report.exit_code(), 1);
        assert_eq!(fs::metadata(&seg).unwrap().len(), len - 10, "read-only");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_dir_is_an_error() {
        let dir = temp_dir("absent"); // never created
        assert!(scan_dir(&dir).is_err());
    }
}
