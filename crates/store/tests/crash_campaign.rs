//! Seeded crash-point campaign against the durable store's files.
//!
//! A pristine multi-segment store is built once; every campaign case
//! copies it, applies ONE drawn fault (truncation = torn write, bit
//! flip = storage rot, zeroed span = failed block write) via
//! `cuszp_faultsim::disk`, and reopens. The recovery contract under
//! test, for *any* single fault at *any* drawn offset:
//!
//! 1. reopening never panics and never errors on damage (only typed
//!    fault reports);
//! 2. every shard the store still serves is bit-exact against SOME
//!    acknowledged write of that slot — corrupt bytes are never
//!    returned as valid. (A damaged overwrite or tombstone record is
//!    skipped during replay, so the slot may legitimately roll back to
//!    the previous acknowledged generation — but never to garbage.)
//! 3. every slot not serving its latest state (lost, rolled back, or
//!    resurrected) is accounted for by a typed fault (recovery report,
//!    runtime fault, or a counted drop);
//! 4. the store stays writable: damaged slots can be re-put or
//!    re-deleted (the store half of "healable via cluster-scrub") and
//!    then read back at their latest state.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use cuszp_faultsim::disk::{copy_dir, disk_campaign};
use cuszp_store::{fnv1a, FsyncPolicy, LogStore, StoreConfig};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "cuszp-store-crash-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> StoreConfig {
    StoreConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Never,
        // Tiny budget: the roll threshold floors at 64 KiB, so ~250 KiB
        // of records spread over several segments. No compaction fires
        // (the pristine log is mostly live).
        compact_at: 1,
    }
}

/// Deterministic payload for a slot — any returned bytes are checkable.
fn payload_for(key_id: u32, idx: u16, generation: u32) -> Vec<u8> {
    let len = 2048 + ((key_id as usize * 37 + idx as usize * 11) % 3000);
    let seed = (key_id as u64) << 32 | (idx as u64) << 16 | generation as u64;
    (0..len)
        .map(|i| (seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64) >> 3) as u8)
        .collect()
}

/// A slot's acknowledged history: the latest state (`None` =
/// tombstoned) plus every earlier acknowledged generation a damaged
/// later record may legitimately expose again.
struct Slot {
    latest: Option<Vec<u8>>,
    stale: Vec<Vec<u8>>,
}

/// Builds the pristine store: 64 unique slots, a few overwrites and
/// deletes (so tombstones and superseded records are on disk), spread
/// across multiple segments. Returns each slot's acknowledged history.
fn build_pristine(dir: &Path) -> HashMap<(String, u16), Slot> {
    let mut store = LogStore::open(config(dir)).expect("open pristine");
    let mut expect: HashMap<(String, u16), Slot> = HashMap::new();
    for key_id in 0..16u32 {
        for idx in 0..4u16 {
            let key = format!("archive-{key_id}");
            let bytes = payload_for(key_id, idx, 0);
            store
                .put(&key, idx, &bytes, bytes.len() as u64, fnv1a(&bytes), false)
                .expect("pristine put");
            expect.insert(
                (key, idx),
                Slot {
                    latest: Some(bytes),
                    stale: Vec::new(),
                },
            );
        }
    }
    // Overwrites: generation 1 wins; a damaged gen-1 record may roll
    // the slot back to gen 0.
    for key_id in [2u32, 5, 9] {
        let key = format!("archive-{key_id}");
        let bytes = payload_for(key_id, 1, 1);
        store
            .put(&key, 1, &bytes, bytes.len() as u64, fnv1a(&bytes), false)
            .expect("pristine overwrite");
        let slot = expect.get_mut(&(key, 1)).unwrap();
        slot.stale.push(slot.latest.replace(bytes).unwrap());
    }
    // Deletes: tombstones on disk; a damaged tombstone may resurrect
    // the prior put.
    for key_id in [3u32, 7] {
        let key = format!("archive-{key_id}");
        store.delete(&key, 2).expect("pristine delete");
        let slot = expect.get_mut(&(key, 2)).unwrap();
        if let Some(prior) = slot.latest.take() {
            slot.stale.push(prior);
        }
    }
    store.sync().expect("pristine sync");
    assert!(
        store.segment_count() >= 3,
        "campaign needs a multi-segment log, got {}",
        store.segment_count()
    );
    expect
}

/// The per-case contract check. Returns how many slots were degraded
/// (lost, rolled back to a stale generation, or resurrected).
fn check_reopened(dir: &Path, expect: &HashMap<(String, u16), Slot>, context: &str) -> usize {
    // (1) Reopen must succeed — damage is reports, not errors/panics.
    let mut store = LogStore::open(config(dir))
        .unwrap_or_else(|e| panic!("{context}: reopen errored on damage: {e}"));
    let boot_faults = store.recovery_report().faults.len();
    let mut degraded = 0usize;
    for ((key, idx), slot) in expect {
        let got = store.get(key, *idx).expect("get io");
        match (&slot.latest, got) {
            (Some(want), Some(got)) if &got.bytes == want => {
                assert_eq!(got.checksum, fnv1a(want), "{context}: checksum drifted");
            }
            (None, None) => {}
            // (2) Anything else the store serves must still be a
            // bit-exact acknowledged generation — never garbage.
            (_, Some(got)) => {
                assert!(
                    slot.stale.iter().any(|s| s == &got.bytes),
                    "{context}: slot ('{key}', {idx}) served corrupt bytes as valid"
                );
                assert_eq!(
                    got.checksum,
                    fnv1a(&got.bytes),
                    "{context}: checksum drifted"
                );
                degraded += 1;
            }
            (Some(_), None) => degraded += 1,
        }
    }
    // (3) Degradation is always accounted for by a typed report.
    if degraded > 0 {
        let accounted =
            boot_faults > 0 || !store.runtime_faults().is_empty() || store.corrupt_dropped() > 0;
        assert!(
            accounted,
            "{context}: {degraded} slot(s) degraded with no typed fault reported"
        );
    }
    // (4) The store stays writable after damage: heal every degraded
    // slot back to its latest state (re-put or re-delete), then read
    // the whole map back at the latest generation.
    for ((key, idx), slot) in expect {
        let current = store.get(key, *idx).expect("get io");
        match &slot.latest {
            Some(want) => {
                if current.as_ref().map(|g| &g.bytes) != Some(want) {
                    store
                        .put(key, *idx, want, want.len() as u64, fnv1a(want), true)
                        .unwrap_or_else(|e| panic!("{context}: heal put failed: {e}"));
                }
            }
            None => {
                if current.is_some() {
                    store
                        .delete(key, *idx)
                        .unwrap_or_else(|e| panic!("{context}: heal delete failed: {e}"));
                }
            }
        }
    }
    for ((key, idx), slot) in expect {
        let got = store.get(key, *idx).expect("get io");
        match &slot.latest {
            Some(want) => {
                let got = got.unwrap_or_else(|| {
                    panic!("{context}: healed slot ('{key}', {idx}) unreadable")
                });
                assert_eq!(&got.bytes, want, "{context}: healed slot differs");
            }
            None => assert!(
                got.is_none(),
                "{context}: tombstoned slot ('{key}', {idx}) alive after heal"
            ),
        }
    }
    degraded
}

#[test]
fn single_fault_campaign_never_panics_and_never_serves_rot() {
    let pristine = temp_dir("pristine");
    let expect = build_pristine(&pristine);

    let mut total_lost = 0usize;
    let mut damaged_cases = 0usize;
    for seed in [0xC0FFEE, 0x5EED] {
        let cases = disk_campaign(&pristine, seed, 36).expect("draw campaign");
        assert_eq!(cases.len(), 36);
        for case in cases {
            let victim = temp_dir("victim");
            copy_dir(&pristine, &victim).expect("copy victim");
            case.apply(&victim).expect("apply fault");
            let context = format!("seed {seed:#x} case {} ({})", case.id, case.description);
            let lost = check_reopened(&victim, &expect, &context);
            total_lost += lost;
            if lost > 0 {
                damaged_cases += 1;
            }
            let _ = fs::remove_dir_all(&victim);
        }
    }
    // Sanity on the campaign itself: the faults must actually bite
    // sometimes, or the contract was never exercised.
    assert!(
        damaged_cases > 10,
        "campaign drew faults that almost never damaged records ({damaged_cases} damaging cases, {total_lost} slots lost)"
    );
    let _ = fs::remove_dir_all(&pristine);
}

/// A kill -9 mid-append is a *suffix* loss on the active segment. Walk
/// every truncation point across the last record's bytes and require:
/// clean recovery, all earlier slots intact, and a typed torn-tail
/// report whenever the cut is mid-record.
#[test]
fn every_truncation_of_the_final_record_recovers() {
    let pristine = temp_dir("tail-pristine");
    {
        let mut store = LogStore::open(config(&pristine)).expect("open");
        for idx in 0..3u16 {
            let bytes = payload_for(90, idx, 0);
            store
                .put(
                    "tail",
                    idx,
                    &bytes,
                    bytes.len() as u64,
                    fnv1a(&bytes),
                    false,
                )
                .expect("put");
        }
        store.sync().expect("sync");
    }
    // Locate the final record precisely with the offline scanner — the
    // same scan boot recovery runs, so the offsets cannot drift.
    let report = cuszp_store::scan_dir(&pristine).expect("scan pristine");
    let active_report = report
        .segments
        .iter()
        .max_by_key(|s| s.seq)
        .expect("active segment");
    let active_name = format!("seg-{:08}.czl", active_report.seq);
    let full = active_report.bytes;
    let start = active_report.records.last().expect("final record").offset;

    // Cutting exactly at the final record's start removes it cleanly:
    // to recovery that write simply never happened — no fault, the two
    // earlier slots intact.
    {
        let victim = temp_dir("tail-clean");
        copy_dir(&pristine, &victim).expect("copy");
        let f = fs::OpenOptions::new()
            .write(true)
            .open(victim.join(&active_name))
            .unwrap();
        f.set_len(start).unwrap();
        drop(f);
        let mut store = LogStore::open(config(&victim)).expect("reopen at boundary");
        assert!(store.recovery_report().is_clean());
        assert!(store.get("tail", 2).expect("get io").is_none());
        assert_eq!(
            store.get("tail", 0).expect("get io").unwrap().bytes,
            payload_for(90, 0, 0)
        );
        let _ = fs::remove_dir_all(&victim);
    }

    // Sample cut points strictly inside the final record (every 97
    // bytes keeps the test fast while hitting prefix/magic/body/trailer
    // regions).
    let mut cut = start + 1;
    while cut < full {
        let victim = temp_dir("tail-victim");
        copy_dir(&pristine, &victim).expect("copy");
        let f = fs::OpenOptions::new()
            .write(true)
            .open(victim.join(&active_name))
            .unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let mut store = LogStore::open(config(&victim))
            .unwrap_or_else(|e| panic!("cut at {cut}: reopen errored: {e}"));
        for idx in 0..2u16 {
            let got = store
                .get("tail", idx)
                .expect("get io")
                .unwrap_or_else(|| panic!("cut at {cut}: earlier slot {idx} lost"));
            assert_eq!(got.bytes, payload_for(90, idx, 0), "cut at {cut}");
        }
        match store.get("tail", 2).expect("get io") {
            Some(got) => assert_eq!(got.bytes, payload_for(90, 2, 0), "cut at {cut}"),
            None => assert!(
                !store.recovery_report().is_clean(),
                "cut at {cut}: record lost without a typed report"
            ),
        }
        let _ = fs::remove_dir_all(&victim);
        cut += 97;
    }
    let _ = fs::remove_dir_all(&pristine);
}
