//! Property tests for the durable shard store: record codec round-trip,
//! tombstone/overwrite semantics against a reference model, and
//! compaction equivalence (the live key→value map is invariant under
//! compaction and reopen).

use std::collections::HashMap;
use std::path::PathBuf;

use cuszp_store::record::{parse_record, Parsed, Record, RecordKind};
use cuszp_store::{fnv1a, FsyncPolicy, LogStore, StoreConfig};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("cuszp-store-prop-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &std::path::Path) -> LogStore {
    LogStore::open(StoreConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Never,
        compact_at: 1 << 30,
    })
    .expect("open store")
}

/// One modelled operation: `kind` 0/1 = put, 2 = delete (puts weighted
/// so the store usually has content).
type Op = (u8, u8, u16, Vec<u8>);

fn key_name(id: u8) -> String {
    format!("key-{}", id % 6)
}

/// Applies an op stream to the store and to a plain-map model.
fn apply_ops(store: &mut LogStore, model: &mut HashMap<(String, u16), Vec<u8>>, ops: &[Op]) {
    for (kind, key_id, idx, payload) in ops {
        let key = key_name(*key_id);
        let idx = idx % 4;
        if *kind < 2 {
            let total_len = payload.len() as u64;
            let archive_fnv = fnv1a(payload);
            store
                .put(&key, idx, payload, total_len, archive_fnv, false)
                .expect("put");
            model.insert((key, idx), payload.clone());
        } else {
            store.delete(&key, idx).expect("delete");
            model.remove(&(key, idx));
        }
    }
}

/// The full agreement check: every modelled slot reads back bit-exact,
/// absent slots are absent, and the verified inventory matches the
/// model's sorted view.
fn assert_matches_model(store: &mut LogStore, model: &HashMap<(String, u16), Vec<u8>>) {
    for ((key, idx), expect) in model {
        let got = store
            .get(key, *idx)
            .expect("get io")
            .unwrap_or_else(|| panic!("slot ('{key}', {idx}) missing"));
        assert_eq!(&got.bytes, expect, "slot ('{key}', {idx}) bytes differ");
        assert_eq!(got.checksum, fnv1a(expect));
    }
    for key_id in 0..6u8 {
        for idx in 0..4u16 {
            let key = key_name(key_id);
            if !model.contains_key(&(key.clone(), idx)) {
                assert!(
                    store.get(&key, idx).expect("get io").is_none(),
                    "slot ('{key}', {idx}) should be absent"
                );
            }
        }
    }
    let (entries, dropped) = store.verify_and_list().expect("list");
    assert_eq!(dropped, 0, "a clean store must drop nothing");
    assert_eq!(entries.len(), model.len());
    let mut expect_keys: Vec<(String, u16)> = model.keys().cloned().collect();
    expect_keys.sort();
    let got_keys: Vec<(String, u16)> = entries
        .iter()
        .map(|e| (e.key.clone(), e.shard_idx))
        .collect();
    assert_eq!(got_keys, expect_keys, "inventory must be the sorted model");
    for e in &entries {
        let expect = &model[&(e.key.clone(), e.shard_idx)];
        assert_eq!(e.len, expect.len() as u64);
        assert_eq!(e.checksum, fnv1a(expect));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn record_round_trip(
        key_bytes in prop::collection::vec(97u8..123, 1..24),
        shard_idx in any::<u16>(),
        total_len in any::<u64>(),
        archive_fnv in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..600),
        repair in any::<bool>(),
    ) {
        let key = String::from_utf8(key_bytes).unwrap();
        let record = Record::put(&key, shard_idx, &payload, total_len, archive_fnv, repair);
        let encoded = record.encode();
        prop_assert_eq!(encoded.len(), record.disk_len());
        match parse_record(&encoded) {
            Parsed::Ok { record: back, disk_len } => {
                prop_assert_eq!(disk_len, encoded.len());
                prop_assert_eq!(back.kind, RecordKind::Put);
                prop_assert_eq!(back.key, key);
                prop_assert_eq!(back.shard_idx, shard_idx);
                prop_assert_eq!(back.total_len, total_len);
                prop_assert_eq!(back.archive_fnv, archive_fnv);
                prop_assert_eq!(back.payload, payload);
            }
            Parsed::Fault { fault, .. } => prop_assert!(false, "round-trip faulted: {}", fault),
        }
    }

    #[test]
    fn tombstone_round_trip(
        key_bytes in prop::collection::vec(97u8..123, 1..24),
        shard_idx in any::<u16>(),
    ) {
        let key = String::from_utf8(key_bytes).unwrap();
        let encoded = Record::tombstone(&key, shard_idx).encode();
        match parse_record(&encoded) {
            Parsed::Ok { record: back, .. } => {
                prop_assert_eq!(back.kind, RecordKind::Tombstone);
                prop_assert_eq!(back.key, key);
                prop_assert_eq!(back.shard_idx, shard_idx);
                prop_assert!(back.payload.is_empty());
            }
            Parsed::Fault { fault, .. } => prop_assert!(false, "tombstone faulted: {}", fault),
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_and_never_overrun(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        match parse_record(&bytes) {
            Parsed::Ok { disk_len, .. } => prop_assert!(disk_len <= bytes.len()),
            Parsed::Fault { skip, .. } => prop_assert!(skip <= bytes.len()),
        }
    }

    #[test]
    fn store_matches_model_through_reopen(
        ops in prop::collection::vec(
            (0u8..3, any::<u8>(), any::<u16>(), prop::collection::vec(any::<u8>(), 0..300)),
            1..60,
        ),
    ) {
        let dir = temp_dir("model");
        let mut model = HashMap::new();
        {
            let mut store = open(&dir);
            apply_ops(&mut store, &mut model, &ops);
            assert_matches_model(&mut store, &model);
        }
        // Tombstone/overwrite semantics must survive a clean reopen:
        // later records win, tombstoned slots stay dead.
        let mut store = open(&dir);
        prop_assert!(
            store.recovery_report().is_clean(),
            "clean log must recover clean: {}",
            store.recovery_report()
        );
        assert_matches_model(&mut store, &model);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_the_live_map(
        ops in prop::collection::vec(
            (0u8..3, any::<u8>(), any::<u16>(), prop::collection::vec(any::<u8>(), 0..300)),
            1..60,
        ),
    ) {
        let dir = temp_dir("compact");
        let mut model = HashMap::new();
        let mut store = open(&dir);
        apply_ops(&mut store, &mut model, &ops);
        let (before, _) = store.verify_and_list().expect("list before");
        store.compact_now().expect("compact");
        prop_assert_eq!(store.dead_bytes(), 0);
        prop_assert_eq!(store.segment_count(), 1);
        let (after, dropped) = store.verify_and_list().expect("list after");
        prop_assert_eq!(dropped, 0);
        prop_assert_eq!(&before, &after, "compaction changed the live map");
        assert_matches_model(&mut store, &model);
        // And the compacted store reopens to the same map.
        drop(store);
        let mut store = open(&dir);
        prop_assert!(store.recovery_report().is_clean());
        let (reopened, _) = store.verify_and_list().expect("list reopened");
        prop_assert_eq!(&before, &reopened, "reopen after compaction changed the map");
        assert_matches_model(&mut store, &model);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
