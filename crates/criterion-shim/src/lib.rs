//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the criterion 0.5 API the workspace's benches use —
//! `Criterion`, benchmark groups, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock harness:
//! per benchmark it warms up once, then times `sample_size` samples and
//! reports the best and mean, plus derived throughput when declared.
//!
//! Environment knobs:
//! * `CUSZP_BENCH_SAMPLES` overrides every group's sample count.
//! * a single CLI argument (after any `--bench`/`--test` flags cargo
//!   passes) filters benchmarks by substring, like criterion.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Work per iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

/// Measures closures handed to `Bencher::iter`.
pub struct Bencher {
    samples: usize,
    /// Filled by `iter`: per-sample wall time.
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f` for the configured number of samples (after one warmup
    /// call whose result is discarded).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        self.times = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
    }
}

/// A named set of related benchmarks sharing sample-size/throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (criterion's minimum is 10; any positive
    /// value is accepted here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark that captures its input from the environment.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b));
        self
    }

    /// Runs a benchmark over an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// Ends the group (accounting only; output is printed per benchmark).
    pub fn finish(&mut self) {}

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, label);
        if !self.criterion.matches(&full) {
            return;
        }
        let samples = std::env::var("CUSZP_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.sample_size);
        let mut b = Bencher {
            samples,
            times: Vec::new(),
        };
        f(&mut b);
        report(&full, &b.times, self.throughput);
    }
}

fn report(label: &str, times: &[Duration], throughput: Option<Throughput>) {
    if times.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let best = times.iter().min().copied().unwrap_or_default();
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let rate = |work: u64, t: Duration| work as f64 / t.as_secs_f64().max(1e-12);
    match throughput {
        Some(Throughput::Bytes(bytes)) => println!(
            "{label}: best {:>12?}  mean {:>12?}  ({:.3} GB/s best, {} samples)",
            best,
            mean,
            rate(bytes, best) / 1e9,
            times.len(),
        ),
        Some(Throughput::Elements(n)) => println!(
            "{label}: best {:>12?}  mean {:>12?}  ({:.3} Gelem/s best, {} samples)",
            best,
            mean,
            rate(n, best) / 1e9,
            times.len(),
        ),
        None => println!(
            "{label}: best {:>12?}  mean {:>12?}  ({} samples)",
            best,
            mean,
            times.len(),
        ),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [filter]`; a
        // bare non-flag argument is a substring filter like criterion's.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, label: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(label) {
            let samples = std::env::var("CUSZP_BENCH_SAMPLES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(10);
            let mut b = Bencher {
                samples,
                times: Vec::new(),
            };
            f(&mut b);
            report(label, &b.times, None);
        }
        self
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: 4,
            times: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.times.len(), 4);
        assert_eq!(calls, 5, "warmup + 4 samples");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("encode", "smooth").label, "encode/smooth");
        assert_eq!(BenchmarkId::from_parameter(8).label, "8");
    }

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("shim");
        g.sample_size(2).throughput(Throughput::Bytes(1024));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("only_this".into()),
        };
        let mut ran = false;
        let mut g = c.benchmark_group("other");
        g.bench_function("nope", |_b| ran = true);
        assert!(!ran);
    }
}
