//! Compressibility analysis — the "awareness" in cuSZ+'s
//! compressibility-aware framework (§III of the paper).
//!
//! Two instruments:
//!
//! * [`variogram`] — the madogram/binary-variance sampling scheme of
//!   §III-B.2: an empirical variance-vs-distance curve over random pairs
//!   `(a, a+d)`, `d ≤ 200`. The *binary* variant (`0` if equal, `1` if
//!   not) measures exactly the probability that an RLE run breaks at
//!   distance `d`; its value at `d = 1` is the RLE roughness, and
//!   `1 − roughness` the smoothness.
//! * [`selector`] — the workflow decision: estimate the Huffman average
//!   bit-length `⟨b⟩` from the quant-code histogram alone (via the
//!   Gallager/Johnsen redundancy bounds re-exported from
//!   `cuszp_huffman::stats`) and pick Workflow-RLE when `⟨b⟩ ≤ 1.09`,
//!   the paper's practical threshold.

pub mod predictor;
pub mod selector;
pub mod spatial;
pub mod variogram;

pub use predictor::{
    score_predictors, PredictorChoice, PredictorScore, PREDICTOR_MARGIN_BITS,
    PREDICTOR_PROBE_ELEMS, PROBE_HIST_BINS,
};
pub use selector::{
    analyze, analyze_with_histogram, select_workflow, CompressibilityReport, WorkflowChoice,
    RLE_BIT_LENGTH_THRESHOLD,
};
pub use spatial::{anisotropy, axis_binary_variogram, axis_madogram, AnisotropyReport, Axis};
pub use variogram::{binary_variogram, madogram, smoothness, VariogramCurve, DEFAULT_MAX_DISTANCE};
