//! Adaptive workflow selection (the decision logic behind Fig. 1's two
//! paths).
//!
//! From the quant-code histogram alone — one cheap parallel pass — we
//! bracket the Huffman average bit-length `⟨b⟩` via the redundancy bounds
//! and estimate the RLE bit cost from the adjacency roughness. The paper's
//! practical rule: **when `⟨b⟩` is likely ≤ 1.09 bits, take Workflow-RLE**
//! (optionally with a trailing VLE pass); otherwise take the default
//! Workflow-Huffman.

use cuszp_huffman::stats;

use crate::variogram::binary_variogram;

/// The paper's bit-length threshold for switching to RLE.
pub const RLE_BIT_LENGTH_THRESHOLD: f64 = 1.09;

/// Bits an RLE run costs in the uncompressed (default) layout:
/// a `u16` value plus a `u32` count.
const RLE_BITS_PER_RUN: f64 = 48.0;

/// The coding stage a field should take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkflowChoice {
    /// Default path: multi-byte Huffman over quant-codes (cuSZ behaviour).
    Huffman,
    /// Smooth data: run-length encoding only.
    Rle,
    /// Smooth data where an extra VLE pass pays for its codebooks.
    RleVle,
}

impl WorkflowChoice {
    /// Display name used in reports and benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            WorkflowChoice::Huffman => "Workflow-Huffman",
            WorkflowChoice::Rle => "Workflow-RLE",
            WorkflowChoice::RleVle => "Workflow-RLE+VLE",
        }
    }
}

/// Everything the selector derived from one analysis pass.
#[derive(Debug, Clone, Copy)]
pub struct CompressibilityReport {
    /// Probability of the most likely quant-code.
    pub p1: f64,
    /// Shannon entropy of the quant-codes (bits/symbol).
    pub entropy: f64,
    /// Lower estimate of the Huffman average bit-length.
    pub b_lower: f64,
    /// Upper estimate of the Huffman average bit-length.
    pub b_upper: f64,
    /// Probability that adjacent quant-codes differ (RLE roughness at
    /// distance 1).
    pub roughness: f64,
    /// Estimated compression ratio of Workflow-Huffman for `f32` input.
    pub est_cr_huffman: f64,
    /// Estimated compression ratio of Workflow-RLE (uncompressed runs).
    pub est_cr_rle: f64,
    /// The selected workflow.
    pub choice: WorkflowChoice,
}

/// Analyzes a quant-code stream and selects the coding workflow.
///
/// `cap` is the symbol alphabet size. Sampling is deterministic (fixed
/// seed) so compression is reproducible.
pub fn analyze(codes: &[u16], cap: u16) -> CompressibilityReport {
    let hist = cuszp_huffman::histogram(codes, cap as usize);
    analyze_with_histogram(codes, &hist)
}

/// [`analyze`] over a histogram the caller has already computed (the
/// pipeline engine builds one histogram per chunk and shares it between
/// selection and codebook construction instead of counting twice).
///
/// `hist` must be the exact symbol histogram of `codes` with one bin per
/// alphabet symbol.
pub fn analyze_with_histogram(codes: &[u16], hist: &[u32]) -> CompressibilityReport {
    let p1 = stats::p1(hist);
    let entropy = stats::entropy(hist);
    let (b_lower, b_upper) = stats::avg_bit_length_bounds(hist);

    // Adjacency roughness from a capped sample (the madogram's offline
    // sampling scheme, distance restricted to 1 which is what run breaks
    // care about).
    let n_samples = codes.len().min(64 * 1024);
    let roughness = if codes.len() < 2 {
        0.0
    } else {
        binary_variogram(codes, n_samples, 1, 0xC052).at_unit_distance()
    };

    // f32 input: 32 bits per element.
    let est_cr_huffman = 32.0 / b_lower.max(1.0);
    // Expected runs per element ≈ roughness (+ the run the stream opens
    // with, negligible); each run costs RLE_BITS_PER_RUN.
    let est_bits_rle = (roughness * RLE_BITS_PER_RUN).max(32.0 / 1e6);
    let est_cr_rle = 32.0 / est_bits_rle;

    let choice = if b_lower <= RLE_BIT_LENGTH_THRESHOLD {
        // Smooth enough for RLE; the VLE pass is worthwhile unless the
        // stream is so tiny the codebooks dominate.
        if codes.len() >= 64 * 1024 {
            WorkflowChoice::RleVle
        } else {
            WorkflowChoice::Rle
        }
    } else {
        WorkflowChoice::Huffman
    };

    CompressibilityReport {
        p1,
        entropy,
        b_lower,
        b_upper,
        roughness,
        est_cr_huffman,
        est_cr_rle,
        choice,
    }
}

/// Convenience wrapper returning only the choice.
pub fn select_workflow(codes: &[u16], cap: u16) -> WorkflowChoice {
    analyze(codes, cap).choice
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a stream with the requested most-likely-symbol probability.
    fn stream_with_p1(n: usize, p1: f64) -> Vec<u16> {
        (0..n)
            .map(|i| {
                let phase = (i as f64 * 0.61803398875) % 1.0; // low-discrepancy
                if phase < p1 {
                    512u16
                } else if phase < p1 + (1.0 - p1) / 2.0 {
                    511
                } else {
                    513
                }
            })
            .collect()
    }

    #[test]
    fn rough_stream_selects_huffman() {
        let codes = stream_with_p1(100_000, 0.5);
        let report = analyze(&codes, 1024);
        assert_eq!(report.choice, WorkflowChoice::Huffman);
        assert!(report.b_lower > RLE_BIT_LENGTH_THRESHOLD);
    }

    #[test]
    fn very_smooth_stream_selects_rle() {
        let codes = stream_with_p1(200_000, 0.99);
        let report = analyze(&codes, 1024);
        assert!(matches!(
            report.choice,
            WorkflowChoice::Rle | WorkflowChoice::RleVle
        ));
        assert!(report.b_lower <= RLE_BIT_LENGTH_THRESHOLD);
        assert!(report.p1 > 0.98);
    }

    #[test]
    fn small_smooth_stream_skips_the_vle_pass() {
        let codes = vec![512u16; 1000];
        let report = analyze(&codes, 1024);
        assert_eq!(report.choice, WorkflowChoice::Rle);
    }

    #[test]
    fn estimates_track_reality_for_smooth_data() {
        // p1 = 0.995 arranged in runs: the RLE estimate should beat the
        // Huffman estimate (which is pinned at ≤ 32×).
        let mut codes = Vec::new();
        for i in 0..2000u32 {
            codes.extend(std::iter::repeat_n(512u16, 199));
            codes.push(511 + (i % 3) as u16);
        }
        let report = analyze(&codes, 1024);
        assert!(report.est_cr_huffman <= 32.0 + 1e-9);
        assert!(
            report.est_cr_rle > report.est_cr_huffman,
            "RLE {} must beat Huffman {} here",
            report.est_cr_rle,
            report.est_cr_huffman
        );
    }

    #[test]
    fn threshold_is_monotone_in_p1() {
        // Sweep p1 and confirm the decision flips exactly once.
        let mut last_was_rle = false;
        let mut flips = 0;
        for p in [0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.97, 0.99] {
            let codes = stream_with_p1(100_000, p);
            let rle = select_workflow(&codes, 1024) != WorkflowChoice::Huffman;
            if rle != last_was_rle {
                flips += 1;
                last_was_rle = rle;
            }
        }
        assert!(
            flips <= 1,
            "decision must be monotone in p1 (flips={flips})"
        );
        assert!(last_was_rle, "p1=0.99 must choose RLE");
    }

    #[test]
    fn empty_stream_defaults_to_huffman_safely() {
        let report = analyze(&[], 1024);
        // No data: entropy 0, b pinned at 1, selector picks the RLE branch
        // degenerately but must not panic; storage is zero either way.
        assert_eq!(report.roughness, 0.0);
        assert!(report.b_lower >= 1.0);
    }
}
