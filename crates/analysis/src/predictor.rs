//! Predictor scoring — the codec-plan extension of the §III selector.
//!
//! The workflow selector decides *how to entropy-code* the quant-codes;
//! this module decides *which predictor produces them*. Both predictors
//! run on the same prequantized integers, so their residual streams are
//! directly comparable: the one whose residuals entropy-code smaller
//! yields the smaller payload. In the same spirit as the
//! histogram-driven `⟨b⟩ ≤ 1.09` rule, the score is histogram-driven
//! rather than moment-driven:
//!
//! * probe a leading sub-slab of the field (whole slow-axis units, so
//!   the slab is contiguous in C-order and keeps the field's geometry),
//!   capped at [`PREDICTOR_PROBE_ELEMS`] elements;
//! * drive both prediction structures over the probe
//!   ([`cuszp_predictor::lorenzo_residuals`] /
//!   [`cuszp_predictor::interpolation_residuals`]), binning each
//!   residual exactly as the quantizer would (a symmetric
//!   [`PROBE_HIST_BINS`]-wide window with an escape bucket for
//!   outliers), and score each predictor by the **empirical entropy**
//!   of its bin histogram plus a flat per-outlier charge. Entropy is
//!   what the Huffman stage actually pays: a distribution concentrated
//!   on a handful of symbols beats one that is merely *small on
//!   average* — a mean-|δ| or Elias-length score rewards tiny residuals
//!   even when they are spread over many distinct values and therefore
//!   code wide.
//!
//! Interpolation must beat Lorenzo by [`PREDICTOR_MARGIN_BITS`] to be
//! chosen: Lorenzo is the cheaper kernel and the safer default on rough
//! fields, so ties and near-ties keep it.

use cuszp_predictor::{interpolation_residuals, lorenzo_residuals, Dims};

/// Probe size cap: enough slow-axis units to cover about this many
/// elements. 32 Ki integers keeps the probe under a millisecond while
/// sampling several interpolation levels.
pub const PREDICTOR_PROBE_ELEMS: usize = 32 * 1024;

/// Estimated bits-per-symbol advantage interpolation needs before the
/// selector abandons Lorenzo.
pub const PREDICTOR_MARGIN_BITS: f64 = 0.15;

/// Width of the probe's residual histogram — the default quant cap, so
/// probe binning mirrors what the real quantizer does to residuals.
pub const PROBE_HIST_BINS: usize = 1024;

/// Bits charged per probe residual that falls outside the histogram
/// window: outliers are stored verbatim (index + value) by the archive.
const OUTLIER_BITS: f64 = 32.0;

/// Which predictor the score picked. Mirrors `cuszp::Predictor` without
/// depending on the core crate (the dependency points the other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorChoice {
    /// First-order Lorenzo stencil (the paper's pipeline).
    Lorenzo,
    /// Multi-level cubic interpolation (SZ3 / cuSZ-i style).
    Interpolation,
}

/// Outcome of [`score_predictors`]: the per-predictor bit estimates and
/// the resulting decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorScore {
    /// Estimated bits/symbol for Lorenzo residuals on the probe.
    pub lorenzo_bits: f64,
    /// Estimated bits/symbol for interpolation residuals on the probe.
    pub interpolation_bits: f64,
    /// Elements actually probed.
    pub probe_elems: usize,
    /// The decision under [`PREDICTOR_MARGIN_BITS`].
    pub choice: PredictorChoice,
}

/// Empirical entropy (bits/symbol) of a residual histogram, plus a flat
/// charge for residuals that escaped the window.
fn histogram_bits(hist: &[u32], outliers: u32, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let total = n as f64;
    let mut h = 0f64;
    for &c in hist {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.log2();
        }
    }
    h + outliers as f64 / total * OUTLIER_BITS
}

/// Scores both predictors on a leading sub-slab of the prequantized
/// field and picks one. Deterministic: the probe is a pure function of
/// `(dq, dims)`, so chunk workers reach the same plan at any worker
/// count.
pub fn score_predictors(dq: &[i64], dims: Dims) -> PredictorScore {
    assert_eq!(dq.len(), dims.len(), "dq length must match dims");
    let eps = dims.elems_per_slow().max(1);
    let slow = dims.slow_extent();
    let probe_slow = (PREDICTOR_PROBE_ELEMS / eps).clamp(1, slow.max(1));
    let sub = dims.slab(probe_slow.min(slow));
    let n = sub.len();
    let probe = &dq[..n];
    let radius = (PROBE_HIST_BINS / 2) as i64;

    let mut hist = vec![0u32; PROBE_HIST_BINS];
    let mut outliers = 0u32;
    {
        let bin = |d: i64, hist: &mut [u32], outliers: &mut u32| {
            let idx = d + radius;
            if (0..PROBE_HIST_BINS as i64).contains(&idx) {
                hist[idx as usize] += 1;
            } else {
                *outliers += 1;
            }
        };
        lorenzo_residuals(probe, sub, |d| bin(d, &mut hist, &mut outliers));
    }
    let lorenzo_bits = histogram_bits(&hist, outliers, n);

    hist.fill(0);
    outliers = 0;
    {
        let bin = |d: i64, hist: &mut [u32], outliers: &mut u32| {
            let idx = d + radius;
            if (0..PROBE_HIST_BINS as i64).contains(&idx) {
                hist[idx as usize] += 1;
            } else {
                *outliers += 1;
            }
        };
        interpolation_residuals(probe, sub, |d| bin(d, &mut hist, &mut outliers));
    }
    let interpolation_bits = histogram_bits(&hist, outliers, n);

    let choice = if interpolation_bits + PREDICTOR_MARGIN_BITS < lorenzo_bits {
        PredictorChoice::Interpolation
    } else {
        PredictorChoice::Lorenzo
    };
    PredictorScore {
        lorenzo_bits,
        interpolation_bits,
        probe_elems: n,
        choice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuszp_predictor::prequantize;

    #[test]
    fn empty_and_tiny_fields_default_to_lorenzo() {
        let s = score_predictors(&[], Dims::D1(0));
        assert_eq!(s.choice, PredictorChoice::Lorenzo);
        let s = score_predictors(&[7], Dims::D1(1));
        assert_eq!(s.choice, PredictorChoice::Lorenzo);
    }

    #[test]
    fn smooth_long_range_structure_picks_interpolation() {
        let (nz, ny, nx) = (48usize, 48, 48);
        let data: Vec<f32> = (0..nz * ny * nx)
            .map(|t| {
                let i = (t % nx) as f32 / nx as f32;
                let j = ((t / nx) % ny) as f32 / ny as f32;
                let k = (t / nx / ny) as f32 / nz as f32;
                ((i * 2.1).sin() + (j * 1.7).cos() + (k * 1.3).sin()) * 100.0
            })
            .collect();
        let dims = Dims::D3 { nz, ny, nx };
        let dq = prequantize(&data, 0.04);
        let s = score_predictors(&dq, dims);
        assert_eq!(s.choice, PredictorChoice::Interpolation, "{s:?}");
        assert!(s.interpolation_bits < s.lorenzo_bits);
    }

    #[test]
    fn rough_noise_keeps_lorenzo() {
        // xorshift noise: no long-range structure for interpolation to use.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let data: Vec<f32> = (0..40_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x as f64 / u64::MAX as f64) as f32 * 100.0
            })
            .collect();
        let dq = prequantize(&data, 1e-3);
        let s = score_predictors(&dq, Dims::D1(40_000));
        assert_eq!(s.choice, PredictorChoice::Lorenzo, "{s:?}");
    }

    #[test]
    fn concentrated_deltas_beat_small_but_spread_residuals() {
        // A sorted ramp with hash jitter: Lorenzo deltas concentrate on
        // a couple of spacing values (low entropy) while interpolation
        // residuals are small *on average* yet spread over many distinct
        // values. An entropy score must keep Lorenzo here; a mean-based
        // score would not.
        let n = 40_000usize;
        let mut acc = 0f64;
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 54;
                acc += 1.0 + (h & 0x3) as f64 * 0.37;
                acc as f32
            })
            .collect();
        let dq = prequantize(&data, 0.05);
        let s = score_predictors(&dq, Dims::D1(n));
        assert_eq!(s.choice, PredictorChoice::Lorenzo, "{s:?}");
    }

    #[test]
    fn probe_is_bounded_and_slab_aligned() {
        let dims = Dims::D2 { ny: 4096, nx: 64 };
        let dq = vec![0i64; dims.len()];
        let s = score_predictors(&dq, dims);
        assert!(s.probe_elems <= PREDICTOR_PROBE_ELEMS);
        assert_eq!(s.probe_elems % 64, 0, "whole slow-axis units only");
    }
}
