//! Empirical madogram / binary variogram with offline sampling.
//!
//! Given the `O(n²)` cost of enumerating pairwise variances, the paper
//! samples: pick a random anchor `a` and a random distance
//! `d ∈ [1, D_max]`, accumulate the (absolute or binary) difference
//! between `v[a]` and `v[a+d]`, and average per distance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's maximum measurement distance (`D_max = 200`).
pub const DEFAULT_MAX_DISTANCE: usize = 200;

/// A sampled variance-vs-distance curve.
#[derive(Debug, Clone, PartialEq)]
pub struct VariogramCurve {
    /// `value[d-1]` is the mean variance at distance `d`.
    pub values: Vec<f64>,
    /// Number of samples that landed on each distance.
    pub counts: Vec<u64>,
}

impl VariogramCurve {
    /// Mean of the curve over all distances that received samples.
    pub fn mean(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for (v, &c) in self.values.iter().zip(&self.counts) {
            if c > 0 {
                sum += v * c as f64;
                n += c;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Value at distance 1 (RLE-relevant adjacency), 0 if unsampled.
    pub fn at_unit_distance(&self) -> f64 {
        if self.counts.first().copied().unwrap_or(0) > 0 {
            self.values[0]
        } else {
            0.0
        }
    }
}

/// Generic sampled variogram with a caller-supplied difference functional.
fn sample_curve<T, F>(
    data: &[T],
    n_samples: usize,
    d_max: usize,
    seed: u64,
    diff: F,
) -> VariogramCurve
where
    F: Fn(&T, &T) -> f64,
{
    let d_max = d_max.max(1);
    let mut sums = vec![0.0f64; d_max];
    let mut counts = vec![0u64; d_max];
    if data.len() >= 2 {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n_samples {
            let d = rng.gen_range(1..=d_max.min(data.len() - 1));
            let a = rng.gen_range(0..data.len() - d);
            sums[d - 1] += diff(&data[a], &data[a + d]);
            counts[d - 1] += 1;
        }
    }
    let values = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    VariogramCurve { values, counts }
}

/// Madogram: mean **absolute** difference per distance,
/// `E[|Z(a) − Z(a+d)|]` — the robust variogram variant of
/// Cressie & Hawkins the paper adopts for its Fig. 2a.
pub fn madogram(data: &[i64], n_samples: usize, d_max: usize, seed: u64) -> VariogramCurve {
    sample_curve(data, n_samples, d_max, seed, |&a, &b| (a - b).abs() as f64)
}

/// Binary variogram: `E[v(a) ≠ v(a+d)]` per distance — the paper's
/// "binary variance", tuned to RLE (a run breaks exactly when the value
/// changes, regardless of by how much).
pub fn binary_variogram(data: &[u16], n_samples: usize, d_max: usize, seed: u64) -> VariogramCurve {
    sample_curve(data, n_samples, d_max, seed, |&a, &b| f64::from(a != b))
}

/// RLE smoothness of a quant-code stream: `1 − roughness`, with roughness
/// the mean binary variance over the sampled curve.
pub fn smoothness(codes: &[u16], n_samples: usize, seed: u64) -> f64 {
    1.0 - binary_variogram(codes, n_samples, DEFAULT_MAX_DISTANCE, seed).mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stream_is_perfectly_smooth() {
        let codes = vec![512u16; 10_000];
        assert_eq!(smoothness(&codes, 5000, 42), 1.0);
        let curve = binary_variogram(&codes, 5000, 50, 42);
        assert!(curve.values.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn alternating_stream_is_maximally_rough_at_odd_distances() {
        let codes: Vec<u16> = (0..10_000).map(|i| (i % 2) as u16).collect();
        let curve = binary_variogram(&codes, 20_000, 10, 7);
        // Odd distances always differ, even distances never do.
        for d in 1..=10usize {
            if curve.counts[d - 1] == 0 {
                continue;
            }
            let expect = if d % 2 == 1 { 1.0 } else { 0.0 };
            assert_eq!(curve.values[d - 1], expect, "distance {d}");
        }
        let s = smoothness(&codes, 20_000, 7);
        assert!(s > 0.4 && s < 0.6, "mixed parity gives ≈0.5: {s}");
    }

    #[test]
    fn madogram_scales_with_amplitude() {
        let small: Vec<i64> = (0..5000).map(|i| (i % 3) as i64).collect();
        let large: Vec<i64> = (0..5000).map(|i| ((i % 3) * 100) as i64).collect();
        let ms = madogram(&small, 10_000, 50, 1).mean();
        let ml = madogram(&large, 10_000, 50, 1).mean();
        assert!(
            ml > 50.0 * ms,
            "madogram must reflect magnitude: {ms} vs {ml}"
        );
    }

    #[test]
    fn quantcode_smoother_than_prequant_on_trend() {
        // A strong linear trend: prequant values wander far apart with
        // distance, quant-codes (differences) stay constant — the paper's
        // Fig. 2a observation.
        let prequant: Vec<i64> = (0..20_000).map(|i| i as i64 * 10).collect();
        let codes: Vec<i64> = vec![10; 20_000]; // δ of the ramp
        let mp = madogram(&prequant, 10_000, 200, 3);
        let mq = madogram(&codes, 10_000, 200, 3);
        assert!(mq.mean() < mp.mean() / 100.0);
        // Prequant madogram grows with distance; quant-code stays flat.
        let p = &mp.values;
        assert!(p[199] > p[0], "trend must grow with distance");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(smoothness(&[], 100, 0), 1.0);
        assert_eq!(smoothness(&[1u16], 100, 0), 1.0);
        let c = madogram(&[], 100, 10, 0);
        assert_eq!(c.mean(), 0.0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let codes: Vec<u16> = (0..5000).map(|i| ((i * 7) % 5) as u16).collect();
        let a = binary_variogram(&codes, 3000, 100, 99);
        let b = binary_variogram(&codes, 3000, 100, 99);
        assert_eq!(a, b);
    }
}
