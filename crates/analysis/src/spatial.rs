//! Axis-aware spatial variograms for multidimensional fields.
//!
//! The flattened 1-D madogram of [`variogram`](crate::variogram) matches
//! what an RLE pass sees (encoding iterates linearly), but the paper's
//! variogram citation (Cressie & Hawkins) is a *spatial* statistic: the
//! variance-distance relationship along each axis can differ
//! (anisotropy), and that difference predicts which traversal order —
//! and which Lorenzo neighbor — carries the most information. A zonal
//! climate field, for instance, is orders of magnitude smoother along
//! longitude than along latitude; the anisotropy ratio makes the
//! structure measurable.

use crate::variogram::VariogramCurve;
use cuszp_predictor::Dims;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which axis to sample along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Fastest axis (x / longitude / columns).
    X,
    /// Middle axis (y / latitude / rows).
    Y,
    /// Slowest axis (z / planes).
    Z,
}

impl Axis {
    /// All axes meaningful for the given rank.
    pub fn for_rank(rank: usize) -> &'static [Axis] {
        match rank {
            1 => &[Axis::X],
            2 => &[Axis::X, Axis::Y],
            _ => &[Axis::X, Axis::Y, Axis::Z],
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Axis::X => "x",
            Axis::Y => "y",
            Axis::Z => "z",
        }
    }
}

/// Per-axis madogram: mean |difference| between points separated by `d`
/// steps **along one axis only**.
pub fn axis_madogram(
    data: &[i64],
    dims: Dims,
    axis: Axis,
    n_samples: usize,
    d_max: usize,
    seed: u64,
) -> VariogramCurve {
    sample_axis(data, dims, axis, n_samples, d_max, seed, |a, b| {
        (a - b).abs() as f64
    })
}

/// Per-axis binary variogram: probability that two points separated by
/// `d` steps along one axis differ.
pub fn axis_binary_variogram(
    codes: &[u16],
    dims: Dims,
    axis: Axis,
    n_samples: usize,
    d_max: usize,
    seed: u64,
) -> VariogramCurve {
    let widened: Vec<i64> = codes.iter().map(|&c| c as i64).collect();
    sample_axis(&widened, dims, axis, n_samples, d_max, seed, |a, b| {
        f64::from(a != b)
    })
}

/// Anisotropy report: mean madogram per axis plus the max/min ratio.
#[derive(Debug, Clone)]
pub struct AnisotropyReport {
    /// `(axis, mean madogram)` in axis order.
    pub per_axis: Vec<(Axis, f64)>,
    /// Ratio of the roughest axis mean over the smoothest (≥ 1).
    pub ratio: f64,
}

/// Measures anisotropy of a prequantized field.
pub fn anisotropy(data: &[i64], dims: Dims, n_samples: usize, seed: u64) -> AnisotropyReport {
    let mut per_axis = Vec::new();
    for &axis in Axis::for_rank(dims.rank()) {
        let m = axis_madogram(data, dims, axis, n_samples, 32, seed).mean();
        per_axis.push((axis, m));
    }
    let hi = per_axis.iter().map(|&(_, m)| m).fold(0.0, f64::max);
    let lo = per_axis
        .iter()
        .map(|&(_, m)| m)
        .fold(f64::INFINITY, f64::min);
    let ratio = if lo > 0.0 {
        hi / lo
    } else if hi > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    AnisotropyReport { per_axis, ratio }
}

fn sample_axis<F>(
    data: &[i64],
    dims: Dims,
    axis: Axis,
    n_samples: usize,
    d_max: usize,
    seed: u64,
    diff: F,
) -> VariogramCurve
where
    F: Fn(i64, i64) -> f64,
{
    assert_eq!(data.len(), dims.len(), "data length must match dims");
    let [nz, ny, nx] = dims.extents();
    let (extent, stride) = match axis {
        Axis::X => (nx, 1usize),
        Axis::Y => (ny, nx),
        Axis::Z => (nz, ny * nx),
    };
    let d_max = d_max.max(1).min(extent.saturating_sub(1).max(1));
    let mut sums = vec![0.0f64; d_max];
    let mut counts = vec![0u64; d_max];
    if extent >= 2 && !data.is_empty() {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n_samples {
            let d = rng.gen_range(1..=d_max);
            // Random base point whose axis coordinate admits +d.
            let ax = rng.gen_range(0..extent - d);
            let (z, y, x) = match axis {
                Axis::X => (rng.gen_range(0..nz), rng.gen_range(0..ny), ax),
                Axis::Y => (rng.gen_range(0..nz), ax, rng.gen_range(0..nx)),
                Axis::Z => (ax, rng.gen_range(0..ny), rng.gen_range(0..nx)),
            };
            let idx = (z * ny + y) * nx + x;
            sums[d - 1] += diff(data[idx], data[idx + d * stride]);
            counts[d - 1] += 1;
        }
    }
    let values = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    VariogramCurve { values, counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zonal_field_is_anisotropic_the_right_way() {
        // Value depends only on the row: x-madogram 0, y-madogram > 0.
        let (ny, nx) = (64usize, 96usize);
        let data: Vec<i64> = (0..ny * nx).map(|t| (t / nx) as i64 * 10).collect();
        let dims = Dims::D2 { ny, nx };
        let mx = axis_madogram(&data, dims, Axis::X, 20_000, 16, 1).mean();
        let my = axis_madogram(&data, dims, Axis::Y, 20_000, 16, 1).mean();
        assert_eq!(mx, 0.0, "rows are constant along x");
        assert!(my > 1.0, "y direction carries the variation: {my}");
        let rep = anisotropy(&data, dims, 20_000, 1);
        assert!(rep.ratio > 10.0 || rep.ratio.is_infinite());
    }

    #[test]
    fn isotropic_noise_has_ratio_near_one() {
        let (nz, ny, nx) = (16usize, 16usize, 16usize);
        let data: Vec<i64> = (0..nz * ny * nx)
            .map(|t| ((t as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 48) as i64)
            .collect();
        let rep = anisotropy(&data, Dims::D3 { nz, ny, nx }, 30_000, 2);
        assert!(rep.ratio < 1.2, "white noise is isotropic: {}", rep.ratio);
        assert_eq!(rep.per_axis.len(), 3);
    }

    #[test]
    fn binary_variant_counts_changes_only() {
        let (ny, nx) = (32usize, 32usize);
        // Checkerboard: every x-step and y-step flips.
        let codes: Vec<u16> = (0..ny * nx)
            .map(|t| (((t / nx) + (t % nx)) % 2) as u16)
            .collect();
        let dims = Dims::D2 { ny, nx };
        let bx = axis_binary_variogram(&codes, dims, Axis::X, 10_000, 4, 3);
        // Odd distances always differ; even never.
        assert_eq!(bx.values[0], 1.0);
        assert_eq!(bx.values[1], 0.0);
    }

    #[test]
    fn axis_listing_matches_rank() {
        assert_eq!(Axis::for_rank(1), &[Axis::X]);
        assert_eq!(Axis::for_rank(2).len(), 2);
        assert_eq!(Axis::for_rank(3).len(), 3);
        assert_eq!(Axis::Z.name(), "z");
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let rep = anisotropy(&[], Dims::D1(0), 100, 0);
        assert_eq!(rep.ratio, 1.0);
        let c = axis_madogram(&[5], Dims::D1(1), Axis::X, 100, 10, 0);
        assert_eq!(c.mean(), 0.0);
    }
}
