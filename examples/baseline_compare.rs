//! Baseline shoot-out: cuSZ+ (this crate) vs a fixed-rate transform coder
//! (the cuZFP stand-in) vs generic lossless compression, on the same
//! fields — the positioning argument of the paper's related-work section.
//!
//! ```sh
//! cargo run --release --example baseline_compare
//! ```

use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::metrics::ErrorStats;
use cuszp::zfp::{compress as zfp_compress, decompress as zfp_decompress, ZfpConfig};
use cuszp::{Compressor, Config, ErrorBound};

fn main() {
    let eb = 1e-3;
    let compressor = Compressor::new(Config {
        error_bound: ErrorBound::Relative(eb),
        ..Config::default()
    });

    println!("error-bounded (cuSZ+) vs fixed-rate (cuZFP-like) vs lossless, rel eb {eb:.0e}\n");
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "field", "cuSZ+ CR", "PSNR(dB)", "zfp@8bit CR", "PSNR(dB)", "gzip CR"
    );

    for kind in [DatasetKind::CesmAtm, DatasetKind::Nyx, DatasetKind::Rtm] {
        for spec in dataset_fields(kind).into_iter().take(2) {
            let field = generate(&spec, Scale::Tiny);
            let n_bytes = field.bytes();

            // cuSZ+: error-bounded, variable ratio.
            let (archive, stats) = compressor
                .compress_with_stats(&field.data, field.dims)
                .unwrap();
            let (recon, _) = cuszp::decompress(&archive.to_bytes()).unwrap();
            let q_sz = ErrorStats::compute(&field.data, &recon);

            // zfp-like: fixed 8 bits/value (CR pinned at 4), variable error.
            let [nz, ny, nx] = field.dims.extents();
            let zc = zfp_compress(
                &field.data,
                [nz, ny, nx],
                ZfpConfig {
                    rate_bits_per_value: 8,
                },
            );
            let (zrecon, _) = zfp_decompress(&zc).unwrap();
            let q_zfp = ErrorStats::compute(&field.data, &zrecon);

            // Generic lossless on the raw bytes (the 2:1 ceiling story).
            let raw: Vec<u8> = field.data.iter().flat_map(|x| x.to_le_bytes()).collect();
            let lossless_cr = raw.len() as f64 / cuszp::lossless::compress(&raw).len() as f64;

            println!(
                "{:<22} {:>10.1} {:>10.1} {:>12.1} {:>12.1} {:>10.2}",
                format!("{}/{}", kind.name(), spec.name),
                stats.compression_ratio(),
                q_sz.psnr,
                n_bytes as f64 / zc.len() as f64,
                q_zfp.psnr,
                lossless_cr
            );
        }
    }

    println!(
        "\nreading the table: the prediction-based error-bounded coder gets\n\
         high, data-dependent ratios at guaranteed quality; the fixed-rate\n\
         transform coder is pinned near 4x with quality that floats; plain\n\
         lossless stays near the 2:1 ceiling the paper cites for float data."
    );
}
