//! Climate-archive scenario: compress a whole CESM-ATM snapshot (35
//! fields) adaptively, as a data-reduction pipeline at a climate center
//! would. Shows the per-field workflow decision the compressibility-aware
//! framework makes — the heart of the paper's §III.
//!
//! ```sh
//! cargo run --release --example climate_archive
//! ```

use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::{Compressor, Config, ErrorBound, WorkflowChoice};

fn main() {
    let eb = 1e-2; // the regime where RLE starts to win (paper Table IV)
    let compressor = Compressor::new(Config {
        error_bound: ErrorBound::Relative(eb),
        ..Config::default()
    });

    println!("CESM-ATM snapshot, relative error bound {eb:.0e}, adaptive workflow\n");
    println!(
        "{:<12} {:>9} {:>8} {:>8} {:>7}  workflow",
        "field", "size(MB)", "CR", "p1", "<b>lo"
    );

    let mut total_in = 0usize;
    let mut total_out = 0usize;
    let mut rle_count = 0usize;
    for spec in dataset_fields(DatasetKind::CesmAtm) {
        let field = generate(&spec, Scale::Tiny);
        let (_, stats) = compressor
            .compress_with_stats(&field.data, field.dims)
            .expect("compression failed");
        total_in += stats.original_bytes;
        total_out += stats.compressed_bytes;
        if stats.workflow != WorkflowChoice::Huffman {
            rle_count += 1;
        }
        println!(
            "{:<12} {:>9.2} {:>8.2} {:>8.4} {:>7.3}  {}",
            spec.name,
            stats.original_bytes as f64 / 1e6,
            stats.compression_ratio(),
            stats.report.p1,
            stats.report.b_lower,
            stats.workflow.name()
        );
    }

    println!(
        "\nsnapshot total: {:.2} MB -> {:.2} MB (CR {:.1}x); {} of 35 fields took Workflow-RLE",
        total_in as f64 / 1e6,
        total_out as f64 / 1e6,
        total_in as f64 / total_out as f64,
        rle_count
    );
    println!(
        "(the adaptive selector sends smooth fields — insolation, aerosol\n\
         optical depths, masks — down the RLE path and keeps the dynamic\n\
         fields on multi-byte Huffman, per the <b> <= 1.09 rule)"
    );
}
