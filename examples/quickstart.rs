//! Quickstart: compress one synthetic climate field, inspect the stats,
//! decompress, and verify the error bound.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::metrics::{verify_error_bound, ErrorStats};
use cuszp::{Compressor, Config, ErrorBound};

fn main() {
    // 1. Get a field. Real deployments read raw f32 from disk
    //    (`cuszp::datagen::read_f32_raw`); here we synthesize a CESM-like
    //    2-D climate field.
    let spec = dataset_fields(DatasetKind::CesmAtm)
        .into_iter()
        .find(|s| s.name == "FSDSC")
        .expect("FSDSC exists");
    let field = generate(&spec, Scale::Small);
    println!(
        "field {:?}: {} elements ({:.1} MB)",
        field.name,
        field.data.len(),
        field.bytes() as f64 / 1e6
    );

    // 2. Configure: value-range-relative 1e-3 bound, adaptive workflow.
    let config = Config {
        error_bound: ErrorBound::Relative(1e-3),
        ..Config::default()
    };
    let compressor = Compressor::new(config);

    // 3. Compress.
    let t0 = std::time::Instant::now();
    let (archive, stats) = compressor
        .compress_with_stats(&field.data, field.dims)
        .expect("compression failed");
    let dt = t0.elapsed();
    println!("{stats}");
    println!(
        "selected {} (p1 = {:.4}, est. <b> in [{:.3}, {:.3}] bits)",
        stats.workflow.name(),
        stats.report.p1,
        stats.report.b_lower,
        stats.report.b_upper
    );
    println!(
        "compression: {:.1} MB/s wall-clock",
        field.bytes() as f64 / 1e6 / dt.as_secs_f64()
    );

    // 4. Serialize, decompress, verify.
    let bytes = archive.to_bytes();
    println!("archive: {} bytes on the wire", bytes.len());
    let (recon, dims) = cuszp::decompress(&bytes).expect("decompression failed");
    assert_eq!(dims, field.dims);

    let eb = config.error_bound.absolute(&field.data);
    let quality: ErrorStats =
        verify_error_bound(&field.data, &recon, eb).expect("error bound must hold");
    println!(
        "verified: max|err| = {:.3e} <= eb = {:.3e}, PSNR = {:.1} dB, NRMSE = {:.2e}",
        quality.max_abs_err, eb, quality.psnr, quality.nrmse
    );
}
