//! Double-precision radiation-hydro scenario: Miranda is natively `f64`
//! (the paper converts it to `f32` only because original cuSZ lacked
//! double support — Table III's footnote). This example shows what the
//! `f64` pipeline buys:
//!
//! 1. the same fields compressed at a tight bound in native doubles,
//!    packed into a multi-field [`Snapshot`] container;
//! 2. a *sub-f32-ULP* bound honored exactly — a weak signal riding on a
//!    large offset, where `f32` storage would destroy the signal outright;
//! 3. per-axis anisotropy analysis of the mixing-layer structure.
//!
//! ```sh
//! cargo run --release --example double_miranda
//! ```

use cuszp::analysis::{anisotropy, Axis};
use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::predictor::prequantize;
use cuszp::{Compressor, Config, ErrorBound};

fn main() {
    // --- 1. The Miranda snapshot in native f64 at rel 1e-6. -------------
    let specs = dataset_fields(DatasetKind::Miranda);
    // At rel 1e-6 the per-cell prediction errors span tens of thousands
    // of quanta, so widen the quantizer: 65534 bins = 16-bit multi-byte
    // Huffman symbols (the paper's "multi-byte" case taken to its limit).
    let compressor = Compressor::new(Config {
        error_bound: ErrorBound::Relative(1e-6),
        cap: 65534,
        ..Config::default()
    });
    println!("Miranda snapshot, native f64, rel eb 1e-6, cap 65534\n");
    let mut total_in = 0usize;
    let mut total_out = 0usize;
    for spec in &specs {
        // Small scale: per-cell gradients shrink with grid refinement,
        // which is what makes tight relative bounds viable on real dumps.
        let base = generate(spec, Scale::Small);
        let data64: Vec<f64> = base.data.iter().map(|&x| x as f64).collect();
        let (archive, stats) = compressor
            .compress_f64_with_stats(&data64, base.dims)
            .expect("f64 compression");
        let bytes = archive.to_bytes();
        let (recon, _) = cuszp::decompress_f64(&bytes).expect("f64 decompression");
        let eb = compressor.config().error_bound.absolute_scalar(&data64);
        let max_err = data64
            .iter()
            .zip(&recon)
            .map(|(o, r)| (o - r).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err <= eb * 1.001);
        total_in += data64.len() * 8;
        total_out += bytes.len();
        println!(
            "{:<12} CR {:>6.2}x  {:<18} max|err| = {:.2e} (eb {:.2e})",
            spec.name,
            stats.compression_ratio(),
            stats.workflow.name(),
            max_err,
            eb
        );
    }
    println!(
        "snapshot: {:.2} MB -> {:.3} MB (CR {:.1}x)\n",
        total_in as f64 / 1e6,
        total_out as f64 / 1e6,
        total_in as f64 / total_out as f64
    );

    // --- 2. Sub-f32-ULP fidelity. ---------------------------------------
    // A diagnostic field: a weak smooth signal (amplitude 1e-5) on a unit
    // offset. In f32, ULP(1.0) ≈ 1.2e-7, so demanding eb = 1e-8 is
    // impossible; the f64 pipeline honors it while still compressing.
    let n = 1 << 16;
    let signal: Vec<f64> = (0..n)
        .map(|i| 1.0 + 1e-5 * (i as f64 * 0.004).sin())
        .collect();
    let tight = Compressor::new(Config {
        error_bound: ErrorBound::Absolute(1e-8),
        ..Config::default()
    });
    let (archive, stats) = tight
        .compress_f64_with_stats(&signal, cuszp::Dims::D1(n))
        .expect("tight f64 compression");
    let (recon, _) = cuszp::decompress_f64(&archive.to_bytes()).unwrap();
    let max_err = signal
        .iter()
        .zip(&recon)
        .map(|(o, r)| (o - r).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_err <= 1e-8 * 1.001,
        "sub-ULP bound must hold: {max_err:e}"
    );
    // And the signal itself survives: correlation of the de-meaned wave.
    let wave: Vec<f64> = signal.iter().map(|x| x - 1.0).collect();
    let wave_r: Vec<f64> = recon.iter().map(|x| x - 1.0).collect();
    let dot: f64 = wave.iter().zip(&wave_r).map(|(a, b)| a * b).sum();
    let na: f64 = wave.iter().map(|a| a * a).sum::<f64>().sqrt();
    let nb: f64 = wave_r.iter().map(|b| b * b).sum::<f64>().sqrt();
    println!(
        "sub-ULP diagnostic: eb 1e-8 on a 1e-5 signal over offset 1.0 ->\n\
         CR {:.1}x, max|err| {:.1e}, signal correlation {:.6}\n\
         (unreachable in f32: ULP(1.0) ~ 1.2e-7 exceeds the bound 12x)\n",
        stats.compression_ratio(),
        max_err,
        dot / (na * nb)
    );

    // --- 3. Anisotropy of the mixing layer. -----------------------------
    let density = generate(&specs[0], Scale::Tiny);
    let dq = prequantize(&density.data, 1e-4);
    let report = anisotropy(&dq, density.dims, 60_000, 0xD0);
    println!("anisotropy of `density` (madogram mean per axis):");
    for (axis, m) in &report.per_axis {
        println!("  {}: {:.1}", axis.name(), m);
    }
    println!("  roughest/smoothest ratio: {:.1}x", report.ratio);
    let y_mean = report
        .per_axis
        .iter()
        .find(|(a, _)| *a == Axis::Y)
        .map(|(_, m)| *m)
        .unwrap();
    assert!(
        report
            .per_axis
            .iter()
            .all(|&(a, m)| a == Axis::Y || m <= y_mean),
        "the interface axis (y) must be the rough one"
    );
    println!(
        "(the y axis — across the tanh mixing front — dominates: the Lorenzo\n\
         'up' neighbor carries most of the prediction for this field class)"
    );
}
