//! GPU what-if analysis: given a field, predict the per-kernel pipeline
//! throughput on V100 and A100 with the calibrated device model — the
//! planning question an HPC facility asks before buying nodes ("does the
//! A100's bandwidth actually help *our* compression pipeline?").
//!
//! ```sh
//! cargo run --release --example gpu_what_if
//! ```

use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::gpusim::cost::{
    modeled_compress_overall, modeled_decompress_overall, modeled_throughput, KernelClass,
    KernelEstimate,
};
use cuszp::gpusim::{A100, V100};
use cuszp::{Compressor, Config, ErrorBound};

fn main() {
    // Analyze one field per dataset class.
    let specs = [
        (DatasetKind::Hacc, 0, 268_000_000usize), // vx at full scale
        (DatasetKind::CesmAtm, 3, 6_480_000),     // FSDSC full scale
        (DatasetKind::Nyx, 0, 134_217_728),       // baryon full scale
    ];
    let compressor = Compressor::new(Config {
        error_bound: ErrorBound::Relative(1e-4),
        ..Config::default()
    });

    for (kind, field_idx, full_elems) in specs {
        let spec = dataset_fields(kind)[field_idx];
        // Measure outlier fraction on a tiny instance; it is a ratio, so
        // it transfers to the full-size estimate.
        let field = generate(&spec, Scale::Tiny);
        let (_, stats) = compressor
            .compress_with_stats(&field.data, field.dims)
            .unwrap();
        let est = KernelEstimate {
            n_elems: full_elems,
            rank: field.dims.rank(),
            outlier_fraction: stats.outlier_fraction(),
        };

        println!(
            "\n=== {} / {} (full-scale: {} elems, {:.1}% outliers measured) ===",
            kind.name(),
            spec.name,
            full_elems,
            est.outlier_fraction * 100.0
        );
        println!(
            "{:<22} {:>10} {:>10} {:>8}",
            "kernel", "V100 GB/s", "A100 GB/s", "scale"
        );
        let kernels = [
            ("Lorenzo construct", KernelClass::LorenzoConstruct),
            ("gather outlier", KernelClass::GatherOutlier),
            ("histogram", KernelClass::Histogram),
            ("Huffman encode", KernelClass::HuffmanEncode),
            ("Huffman decode", KernelClass::HuffmanDecode),
            ("scatter outlier", KernelClass::ScatterOutlier),
            ("Lorenzo reconstruct", KernelClass::LorenzoReconstruct),
        ];
        for (name, k) in kernels {
            let v = modeled_throughput(k, &V100, &est);
            let a = modeled_throughput(k, &A100, &est);
            println!("{name:<22} {v:>10.1} {a:>10.1} {:>7.2}x", a / v);
        }
        let (vc, ac) = (
            modeled_compress_overall(&V100, &est),
            modeled_compress_overall(&A100, &est),
        );
        let (vd, ad) = (
            modeled_decompress_overall(&V100, &est),
            modeled_decompress_overall(&A100, &est),
        );
        println!(
            "{:<22} {vc:>10.1} {ac:>10.1} {:>7.2}x",
            "overall compress",
            ac / vc
        );
        println!(
            "{:<22} {vd:>10.1} {ad:>10.1} {:>7.2}x",
            "overall decompress",
            ad / vd
        );
    }

    println!(
        "\nconclusion (matches the paper's §V-C.2): the memory-bound kernels\n\
         ride the A100's 1.73x bandwidth; the latency-bound Huffman stages\n\
         stagnate, capping the end-to-end gain well below the spec ratio."
    );
}
