//! In-situ cosmology scenario: a simulation loop produces 3-D snapshots
//! that must be compressed between timesteps — the use case the paper's
//! introduction motivates with HACC's petabyte output streams. Measures
//! wall-clock (de)compression throughput per engine and verifies the
//! bound on every snapshot.
//!
//! ```sh
//! cargo run --release --example insitu_cosmology
//! ```

use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::metrics::{gbps, verify_error_bound};
use cuszp::{Compressor, Config, ErrorBound, ReconstructEngine};
use std::time::Instant;

fn main() {
    let compressor = Compressor::new(Config {
        error_bound: ErrorBound::Relative(1e-4),
        ..Config::default()
    });

    // "Timesteps": perturb the base Nyx field so each snapshot differs.
    let spec = dataset_fields(DatasetKind::Nyx)[0];
    let base = generate(&spec, Scale::Small);
    let n_steps = 3;
    println!(
        "in-situ loop: {} snapshots of {} ({:.1} MB each), eb = 1e-4 (rel)\n",
        n_steps,
        spec.name,
        base.bytes() as f64 / 1e6
    );

    let mut archived_bytes = 0usize;
    for step in 0..n_steps {
        // Advance the "simulation": smooth drift plus slight growth.
        let drift = step as f32 * 0.01;
        let snapshot: Vec<f32> = base
            .data
            .iter()
            .map(|&x| x * (1.0 + drift) + drift)
            .collect();

        let t0 = Instant::now();
        let (archive, stats) = compressor
            .compress_with_stats(&snapshot, base.dims)
            .expect("compression failed");
        let t_comp = t0.elapsed();
        let bytes = archive.to_bytes();
        archived_bytes += bytes.len();

        println!(
            "step {step}: CR {:6.2}x, {} | compress {:.2} GB/s wall",
            stats.compression_ratio(),
            stats.workflow.name(),
            gbps(stats.original_bytes, t_comp),
        );

        // Decompress with each engine; the fine-grained partial-sum is
        // the cuSZ+ contribution, the coarse engine is the cuSZ baseline.
        for engine in ReconstructEngine::ALL {
            let t0 = Instant::now();
            let (recon, _) = cuszp::decompress_with_engine(&bytes, engine).unwrap();
            let t_dec = t0.elapsed();
            let eb = compressor.config().error_bound.absolute(&snapshot);
            verify_error_bound(&snapshot, &recon, eb).expect("bound");
            println!(
                "        decompress[{:<16}] {:.2} GB/s wall",
                engine.name(),
                gbps(stats.original_bytes, t_dec)
            );
        }
    }

    println!(
        "\narchived {} snapshots: {:.2} MB total (vs {:.1} MB raw)",
        n_steps,
        archived_bytes as f64 / 1e6,
        (base.bytes() * n_steps) as f64 / 1e6
    );
}
