//! Performance snapshot: per-workflow compress/decompress throughput plus
//! loopback service round-trip latency, emitted as JSON on stdout.
//!
//! ```sh
//! cargo run --release --example bench_snapshot > BENCH_<n>.json
//! ```
//!
//! `scripts/bench_snapshot.sh` wraps this so the checked-in `BENCH_*.json`
//! series accumulates one point per PR and the perf trajectory stays
//! visible in review diffs.

use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::parallel::WorkerPool;
use cuszp::server::{
    Client, ClusterClient, ClusterConfig, CompressRequest, ConnectOptions, DecompressMode,
    NodeInfo, Ring, Server, ServerConfig,
};
use cuszp::{
    Compressor, Config, Dtype, ErrorBound, LosslessMode, Predictor, PredictorMode, RangeSpec,
    WorkflowChoice, WorkflowMode,
};
use std::time::Instant;

const EB: f64 = 1e-3;
const REPS: usize = 3;
const PINGS: usize = 100;

fn main() {
    let spec = dataset_fields(DatasetKind::CesmAtm)[0];
    let field = generate(&spec, Scale::Small);
    let mb = field.bytes() as f64 / (1024.0 * 1024.0);

    println!("{{");
    println!(
        "  \"field\": \"{}/{}\",",
        DatasetKind::CesmAtm.name(),
        spec.name
    );
    println!("  \"dims\": \"{:?}\",", field.dims);
    println!("  \"bytes\": {},", field.bytes());
    println!("  \"error_bound\": \"rel {EB:e}\",");
    println!("  \"workflows\": [");

    let workflows: [(&str, WorkflowMode); 4] = [
        ("auto", WorkflowMode::Auto),
        ("huffman", WorkflowMode::Force(WorkflowChoice::Huffman)),
        ("rle", WorkflowMode::Force(WorkflowChoice::Rle)),
        ("rle+vle", WorkflowMode::Force(WorkflowChoice::RleVle)),
    ];
    for (i, (name, workflow)) in workflows.iter().enumerate() {
        let compressor = Compressor::new(Config {
            error_bound: ErrorBound::Relative(EB),
            workflow: *workflow,
            ..Config::default()
        });
        // Best-of-REPS so one scheduler hiccup does not pollute the series.
        let mut t_comp = f64::MAX;
        let mut t_decomp = f64::MAX;
        let mut bytes = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            let archive = compressor.compress(&field.data, field.dims).unwrap();
            t_comp = t_comp.min(t0.elapsed().as_secs_f64());
            bytes = archive.to_bytes();
            let t0 = Instant::now();
            let (recon, _) = cuszp::decompress(&bytes).unwrap();
            t_decomp = t_decomp.min(t0.elapsed().as_secs_f64());
            assert_eq!(recon.len(), field.data.len());
        }
        println!(
            "    {{\"workflow\": \"{name}\", \"compress_mb_s\": {:.1}, \"decompress_mb_s\": {:.1}, \"ratio\": {:.2}}}{}",
            mb / t_comp,
            mb / t_decomp,
            field.bytes() as f64 / bytes.len() as f64,
            if i + 1 < workflows.len() { "," } else { "" }
        );
    }
    println!("  ],");
    println!("  \"plans\": [");

    // Per-plan throughput: the codec-plan axes (predictor × lossless)
    // at the adaptive workflow, on the same field as above.
    let plans: [(&str, PredictorMode, LosslessMode); 4] = [
        ("auto", PredictorMode::Auto, LosslessMode::Auto),
        (
            "lorenzo",
            PredictorMode::Force(Predictor::Lorenzo),
            LosslessMode::Off,
        ),
        (
            "interpolation",
            PredictorMode::Force(Predictor::Interpolation),
            LosslessMode::Off,
        ),
        (
            "lorenzo+lz77",
            PredictorMode::Force(Predictor::Lorenzo),
            LosslessMode::Auto,
        ),
    ];
    for (i, (name, predictor, lossless)) in plans.iter().enumerate() {
        let compressor = Compressor::new(Config {
            error_bound: ErrorBound::Relative(EB),
            predictor: *predictor,
            lossless: *lossless,
            ..Config::default()
        });
        let mut t_comp = f64::MAX;
        let mut t_decomp = f64::MAX;
        let mut bytes = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            let archive = compressor.compress(&field.data, field.dims).unwrap();
            t_comp = t_comp.min(t0.elapsed().as_secs_f64());
            bytes = archive.to_bytes();
            let t0 = Instant::now();
            let (recon, _) = cuszp::decompress(&bytes).unwrap();
            t_decomp = t_decomp.min(t0.elapsed().as_secs_f64());
            assert_eq!(recon.len(), field.data.len());
        }
        println!(
            "    {{\"plan\": \"{name}\", \"compress_mb_s\": {:.1}, \"decompress_mb_s\": {:.1}, \"ratio\": {:.2}}}{}",
            mb / t_comp,
            mb / t_decomp,
            field.bytes() as f64 / bytes.len() as f64,
            if i + 1 < plans.len() { "," } else { "" }
        );
    }
    println!("  ],");

    // Loopback service latency: a local server on an ephemeral port, one
    // persistent connection, pings for the floor and one heavy round trip
    // each for compress/decompress.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve());
    let mut client = Client::connect(addr.to_string()).unwrap();

    let mut ping_us: Vec<f64> = (0..PINGS)
        .map(|_| {
            let t0 = Instant::now();
            client.ping().unwrap();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    ping_us.sort_by(|a, b| a.total_cmp(b));

    let raw: Vec<u8> = field.data.iter().flat_map(|x| x.to_le_bytes()).collect();
    let req = CompressRequest {
        dims: field.dims,
        dtype: Dtype::F32,
        error_bound: ErrorBound::Relative(EB),
        workflow: WorkflowMode::Auto,
        predictor: PredictorMode::Auto,
        lossless: LosslessMode::Off,
        chunk_target: 0,
        parity: None,
        data: &raw,
    };
    let t0 = Instant::now();
    let served = client.compress(&req).unwrap();
    let compress_rt_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let resp = client.decompress(&served, DecompressMode::Strict).unwrap();
    let decompress_rt_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(resp.data.len(), raw.len());
    client.shutdown_server().unwrap();
    drop(client);
    handle.join().unwrap().unwrap();

    println!("  \"loopback\": {{");
    println!(
        "    \"ping_p50_us\": {:.0}, \"ping_p99_us\": {:.0},",
        ping_us[PINGS / 2],
        ping_us[PINGS * 99 / 100]
    );
    println!(
        "    \"compress_roundtrip_ms\": {compress_rt_ms:.1}, \"decompress_roundtrip_ms\": {decompress_rt_ms:.1}"
    );
    println!("  }},");

    // Clustered range reads: the same field sharded 2+1 across three
    // in-process cluster nodes, a mid-field slab read healthy and then
    // with a data-shard owner dead (reconstructing from parity). Both
    // paths must return identical samples; the row records the cost of
    // the degraded rebuild.
    let archive = Compressor::new(Config {
        error_bound: ErrorBound::Relative(EB),
        ..Config::default()
    })
    .compress_chunked_with(
        &field.data,
        field.dims,
        cuszp::parallel::DEFAULT_CHUNK_ELEMS,
        &WorkerPool::new(2),
    )
    .unwrap()
    .to_bytes();
    let holds: Vec<std::net::TcpListener> = (0..3)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let nodes: Vec<NodeInfo> = holds
        .iter()
        .enumerate()
        .map(|(i, l)| NodeInfo {
            id: i as u64 + 1,
            addr: l.local_addr().unwrap().to_string(),
        })
        .collect();
    let ring = Ring::new(1, 2, 1, nodes.clone()).unwrap();
    drop(holds);
    let mut cluster_joins = Vec::new();
    let mut node_handles = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        let server = Server::bind_cluster(
            n.addr.clone(),
            ServerConfig::default(),
            Some(ClusterConfig {
                node_id: i as u64 + 1,
                ring: ring.clone(),
                backend: cuszp::server::StoreBackendConfig::Memory,
            }),
        )
        .unwrap();
        node_handles.push(server.handle());
        cluster_joins.push(std::thread::spawn(move || server.serve()));
    }
    let mut cc = ClusterClient::with_ring(ring.clone(), ConnectOptions::default());
    cc.put("bench", &archive).unwrap();
    let (ny, nx) = match field.dims {
        cuszp::Dims::D2 { ny, nx } => (ny, nx),
        _ => unreachable!("the bench field is 2-D"),
    };
    let spec = RangeSpec::new(vec![ny / 4..3 * ny / 4, nx / 4..3 * nx / 4]);
    let mut healthy_ms = f64::MAX;
    let mut healthy_samples = Vec::new();
    for _ in 0..REPS {
        let t0 = Instant::now();
        let (samples, _, degraded) = cc.get_range("bench", &spec).unwrap();
        healthy_ms = healthy_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(!degraded);
        healthy_samples = samples;
    }
    // Kill the owner of data slot 0 so the degraded path must rebuild.
    let victim_id = ring.shard_owner("bench", 0).unwrap().id;
    node_handles[victim_id as usize - 1].shutdown();
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut degraded_ms = f64::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let (samples, _, degraded) = cc.get_range("bench", &spec).unwrap();
        degraded_ms = degraded_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(degraded);
        assert_eq!(samples, healthy_samples);
    }
    for n in &nodes {
        if let Ok(mut c) = Client::connect(n.addr.as_str()) {
            let _ = c.shutdown_server();
        }
    }
    for j in cluster_joins {
        j.join().unwrap().unwrap();
    }
    println!("  \"cluster\": {{");
    println!("    \"nodes\": 3, \"data_shards\": 2, \"parity_shards\": 1,");
    println!(
        "    \"get_range_healthy_ms\": {healthy_ms:.1}, \"get_range_degraded_ms\": {degraded_ms:.1}, \"degraded_bit_identical\": true"
    );
    println!("  }},");

    // Shard-store engine latency: one 64 KiB shard put/get through each
    // backend behind the `ShardBackend` trait. `fsync always` is the
    // kill -9 durability contract (every put pays an fsync); `never`
    // shows the raw log-append cost; memory is the baseline.
    let shard: Vec<u8> = (0..64 * 1024).map(|i| (i * 31 % 251) as u8).collect();
    let shard_fnv = cuszp::store::fnv1a(&shard);
    let store_ops = 64usize;
    let bench_dir = std::env::temp_dir().join(format!("cuszp-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&bench_dir);
    let durable = |tag: &str, fsync: cuszp::store::FsyncPolicy| {
        cuszp::server::StoreBackendConfig::Durable(cuszp::store::StoreConfig {
            dir: bench_dir.join(tag),
            fsync,
            compact_at: 256 * 1024 * 1024,
        })
    };
    let store_rows = [
        ("memory", cuszp::server::StoreBackendConfig::Memory),
        (
            "durable fsync=always",
            durable("always", cuszp::store::FsyncPolicy::Always),
        ),
        (
            "durable fsync=never",
            durable("never", cuszp::store::FsyncPolicy::Never),
        ),
    ];
    println!("  \"shard_store\": [");
    for (i, (name, cfg)) in store_rows.iter().enumerate() {
        let mut store = cfg.open().unwrap();
        let t0 = Instant::now();
        for op in 0..store_ops {
            store
                .put(
                    &format!("bench-{op}"),
                    0,
                    &shard,
                    shard.len() as u64,
                    shard_fnv,
                    false,
                )
                .unwrap();
        }
        let put_us = t0.elapsed().as_secs_f64() * 1e6 / store_ops as f64;
        let t0 = Instant::now();
        for op in 0..store_ops {
            let got = store.get(&format!("bench-{op}"), 0).unwrap().unwrap();
            assert_eq!(got.bytes.len(), shard.len());
        }
        let get_us = t0.elapsed().as_secs_f64() * 1e6 / store_ops as f64;
        println!(
            "    {{\"backend\": \"{name}\", \"shard_kib\": 64, \"put_us\": {put_us:.0}, \"get_us\": {get_us:.0}}}{}",
            if i + 1 < store_rows.len() { "," } else { "" }
        );
    }
    let _ = std::fs::remove_dir_all(&bench_dir);
    println!("  ]");
    println!("}}");
}
