//! Performance snapshot: per-workflow compress/decompress throughput plus
//! loopback service round-trip latency, emitted as JSON on stdout.
//!
//! ```sh
//! cargo run --release --example bench_snapshot > BENCH_<n>.json
//! ```
//!
//! `scripts/bench_snapshot.sh` wraps this so the checked-in `BENCH_*.json`
//! series accumulates one point per PR and the perf trajectory stays
//! visible in review diffs.

use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::server::{Client, CompressRequest, DecompressMode, Server, ServerConfig};
use cuszp::{
    Compressor, Config, Dtype, ErrorBound, LosslessMode, Predictor, PredictorMode, WorkflowChoice,
    WorkflowMode,
};
use std::time::Instant;

const EB: f64 = 1e-3;
const REPS: usize = 3;
const PINGS: usize = 100;

fn main() {
    let spec = dataset_fields(DatasetKind::CesmAtm)[0];
    let field = generate(&spec, Scale::Small);
    let mb = field.bytes() as f64 / (1024.0 * 1024.0);

    println!("{{");
    println!(
        "  \"field\": \"{}/{}\",",
        DatasetKind::CesmAtm.name(),
        spec.name
    );
    println!("  \"dims\": \"{:?}\",", field.dims);
    println!("  \"bytes\": {},", field.bytes());
    println!("  \"error_bound\": \"rel {EB:e}\",");
    println!("  \"workflows\": [");

    let workflows: [(&str, WorkflowMode); 4] = [
        ("auto", WorkflowMode::Auto),
        ("huffman", WorkflowMode::Force(WorkflowChoice::Huffman)),
        ("rle", WorkflowMode::Force(WorkflowChoice::Rle)),
        ("rle+vle", WorkflowMode::Force(WorkflowChoice::RleVle)),
    ];
    for (i, (name, workflow)) in workflows.iter().enumerate() {
        let compressor = Compressor::new(Config {
            error_bound: ErrorBound::Relative(EB),
            workflow: *workflow,
            ..Config::default()
        });
        // Best-of-REPS so one scheduler hiccup does not pollute the series.
        let mut t_comp = f64::MAX;
        let mut t_decomp = f64::MAX;
        let mut bytes = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            let archive = compressor.compress(&field.data, field.dims).unwrap();
            t_comp = t_comp.min(t0.elapsed().as_secs_f64());
            bytes = archive.to_bytes();
            let t0 = Instant::now();
            let (recon, _) = cuszp::decompress(&bytes).unwrap();
            t_decomp = t_decomp.min(t0.elapsed().as_secs_f64());
            assert_eq!(recon.len(), field.data.len());
        }
        println!(
            "    {{\"workflow\": \"{name}\", \"compress_mb_s\": {:.1}, \"decompress_mb_s\": {:.1}, \"ratio\": {:.2}}}{}",
            mb / t_comp,
            mb / t_decomp,
            field.bytes() as f64 / bytes.len() as f64,
            if i + 1 < workflows.len() { "," } else { "" }
        );
    }
    println!("  ],");
    println!("  \"plans\": [");

    // Per-plan throughput: the codec-plan axes (predictor × lossless)
    // at the adaptive workflow, on the same field as above.
    let plans: [(&str, PredictorMode, LosslessMode); 4] = [
        ("auto", PredictorMode::Auto, LosslessMode::Auto),
        (
            "lorenzo",
            PredictorMode::Force(Predictor::Lorenzo),
            LosslessMode::Off,
        ),
        (
            "interpolation",
            PredictorMode::Force(Predictor::Interpolation),
            LosslessMode::Off,
        ),
        (
            "lorenzo+lz77",
            PredictorMode::Force(Predictor::Lorenzo),
            LosslessMode::Auto,
        ),
    ];
    for (i, (name, predictor, lossless)) in plans.iter().enumerate() {
        let compressor = Compressor::new(Config {
            error_bound: ErrorBound::Relative(EB),
            predictor: *predictor,
            lossless: *lossless,
            ..Config::default()
        });
        let mut t_comp = f64::MAX;
        let mut t_decomp = f64::MAX;
        let mut bytes = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            let archive = compressor.compress(&field.data, field.dims).unwrap();
            t_comp = t_comp.min(t0.elapsed().as_secs_f64());
            bytes = archive.to_bytes();
            let t0 = Instant::now();
            let (recon, _) = cuszp::decompress(&bytes).unwrap();
            t_decomp = t_decomp.min(t0.elapsed().as_secs_f64());
            assert_eq!(recon.len(), field.data.len());
        }
        println!(
            "    {{\"plan\": \"{name}\", \"compress_mb_s\": {:.1}, \"decompress_mb_s\": {:.1}, \"ratio\": {:.2}}}{}",
            mb / t_comp,
            mb / t_decomp,
            field.bytes() as f64 / bytes.len() as f64,
            if i + 1 < plans.len() { "," } else { "" }
        );
    }
    println!("  ],");

    // Loopback service latency: a local server on an ephemeral port, one
    // persistent connection, pings for the floor and one heavy round trip
    // each for compress/decompress.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve());
    let mut client = Client::connect(addr.to_string()).unwrap();

    let mut ping_us: Vec<f64> = (0..PINGS)
        .map(|_| {
            let t0 = Instant::now();
            client.ping().unwrap();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    ping_us.sort_by(|a, b| a.total_cmp(b));

    let raw: Vec<u8> = field.data.iter().flat_map(|x| x.to_le_bytes()).collect();
    let req = CompressRequest {
        dims: field.dims,
        dtype: Dtype::F32,
        error_bound: ErrorBound::Relative(EB),
        workflow: WorkflowMode::Auto,
        predictor: PredictorMode::Auto,
        lossless: LosslessMode::Off,
        chunk_target: 0,
        parity: None,
        data: &raw,
    };
    let t0 = Instant::now();
    let served = client.compress(&req).unwrap();
    let compress_rt_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let resp = client.decompress(&served, DecompressMode::Strict).unwrap();
    let decompress_rt_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(resp.data.len(), raw.len());
    client.shutdown_server().unwrap();
    drop(client);
    handle.join().unwrap().unwrap();

    println!("  \"loopback\": {{");
    println!(
        "    \"ping_p50_us\": {:.0}, \"ping_p99_us\": {:.0},",
        ping_us[PINGS / 2],
        ping_us[PINGS * 99 / 100]
    );
    println!(
        "    \"compress_roundtrip_ms\": {compress_rt_ms:.1}, \"decompress_roundtrip_ms\": {decompress_rt_ms:.1}"
    );
    println!("  }}");
    println!("}}");
}
