#!/usr/bin/env bash
# Chaos smoke test: boot `cuszp serve` on an ephemeral port, put a seeded
# `cuszp chaos-proxy` in front of it (cuts, flips, chopped writes), and
# drive a remote compress -> decompress -> get-range round trip through
# the proxy with retries enabled. Every result must be bit-identical to
# the local pipeline — the faults are allowed to cost retries, never
# correctness. Fault draws are a pure function of (seed, byte offsets),
# so a fixed seed replays the same injection schedule every run.
set -euo pipefail
cd "$(dirname "$0")/.."

CUSZP=target/release/cuszp
if [[ ! -x "$CUSZP" ]]; then
    echo "==> building release cuszp binary"
    cargo build --release --bin cuszp
fi

WORK=$(mktemp -d)
SERVER_PID=""
PROXY_PID=""
cleanup() {
    [[ -n "$PROXY_PID" ]] && kill "$PROXY_PID" 2>/dev/null || true
    [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "==> generating a small field"
"$CUSZP" gen -o "$WORK/field.f32" --dataset cesm --field FSDSC --scale tiny 2> "$WORK/gen.log"
DIMS=$(sed -n 's/.*-d \([0-9x]*\)$/\1/p' "$WORK/gen.log")
[[ -n "$DIMS" ]] || { echo "FAIL: could not discover field dims"; cat "$WORK/gen.log"; exit 1; }

echo "==> booting cuszp serve on an ephemeral port"
"$CUSZP" serve -a 127.0.0.1:0 --workers 2 > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^cuszp-server listening on //p' "$WORK/serve.out")
    [[ -n "$ADDR" ]] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: server died at boot"; cat "$WORK/serve.err"; exit 1; }
    sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "FAIL: server never reported its address"; exit 1; }
echo "    server at $ADDR (pid $SERVER_PID)"

echo "==> booting chaos-proxy in front of it (fixed seed, cuts + flips + chop)"
# Rates are per-mille per 1 MiB stream epoch: the tiny field's ~1.6 MiB
# transfers span a couple of epochs, so each attempt fails with moderate
# probability and a dozen retries make overall success overwhelming.
"$CUSZP" chaos-proxy --upstream "$ADDR" -a 127.0.0.1:0 --seed 7 \
    --cut-request 120 --cut-response 120 --flip 80 --chop 200 --chop-piece 512 \
    --redraw-bytes 1048576 > "$WORK/proxy.out" 2> "$WORK/proxy.err" &
PROXY_PID=$!
PADDR=""
for _ in $(seq 1 50); do
    PADDR=$(sed -n 's/^chaos-proxy listening on //p' "$WORK/proxy.out")
    [[ -n "$PADDR" ]] && break
    kill -0 "$PROXY_PID" 2>/dev/null || { echo "FAIL: proxy died at boot"; cat "$WORK/proxy.err"; exit 1; }
    sleep 0.1
done
[[ -n "$PADDR" ]] || { echo "FAIL: proxy never reported its address"; exit 1; }
echo "    proxy at $PADDR (pid $PROXY_PID)"

echo "==> health probe through the proxy"
"$CUSZP" remote health -s "$PADDR" --retries 8 > "$WORK/health.out"
grep -q '^healthy:' "$WORK/health.out" || { echo "FAIL: health probe"; cat "$WORK/health.out"; exit 1; }

echo "==> remote compress through chaos (retries on)"
"$CUSZP" remote compress -s "$PADDR" -i "$WORK/field.f32" -o "$WORK/field.csz" \
    -d "$DIMS" -e 1e-3 --retries 12 --deadline-ms 60000 2> "$WORK/compress.err" \
    || { echo "FAIL: remote compress through chaos"; cat "$WORK/compress.err"; exit 1; }

echo "==> chaotic bytes match the local chunked compressor"
"$CUSZP" compress -i "$WORK/field.f32" -o "$WORK/local.csz" -d "$DIMS" -e 1e-3 \
    --threads 2 2> /dev/null
cmp "$WORK/field.csz" "$WORK/local.csz" \
    || { echo "FAIL: archive through chaos differs from local bytes"; exit 1; }

echo "==> remote decompress through chaos matches local decompress"
"$CUSZP" remote decompress "$WORK/field.csz" -s "$PADDR" -o "$WORK/recon_chaos.f32" \
    --retries 12 --deadline-ms 60000 2> "$WORK/decompress.err" \
    || { echo "FAIL: remote decompress through chaos"; cat "$WORK/decompress.err"; exit 1; }
"$CUSZP" decompress -i "$WORK/field.csz" -o "$WORK/recon_local.f32" 2> /dev/null
cmp "$WORK/recon_chaos.f32" "$WORK/recon_local.f32" \
    || { echo "FAIL: reconstruction through chaos differs"; exit 1; }

echo "==> remote get-range through chaos matches local extract"
NY=${DIMS%x*}
NX=${DIMS#*x}
RANGE="1:$((NY / 2))x2:$((NX - 3))"
"$CUSZP" extract -i "$WORK/field.csz" -o "$WORK/ref_slice.raw" --range "$RANGE" 2> /dev/null
"$CUSZP" remote get-range "$WORK/field.csz" -s "$PADDR" -o "$WORK/slice_chaos.raw" \
    --range "$RANGE" --retries 12 --deadline-ms 60000 2> "$WORK/range.err" \
    || { echo "FAIL: remote get-range through chaos"; cat "$WORK/range.err"; exit 1; }
cmp "$WORK/ref_slice.raw" "$WORK/slice_chaos.raw" \
    || { echo "FAIL: range through chaos differs from local extract"; exit 1; }

echo "==> the proxy actually injected faults (server saw retried traffic)"
"$CUSZP" remote stats -s "$ADDR" > "$WORK/stats.out"
grep -q '^compress ' "$WORK/stats.out" || { echo "FAIL: no compress stats"; cat "$WORK/stats.out"; exit 1; }
RESILIENCE=$(cat "$WORK/compress.err" "$WORK/decompress.err" "$WORK/range.err")
echo "$RESILIENCE" | grep -q 'retried' \
    || { echo "NOTE: no client retries fired for this seed"; }

echo "==> graceful shutdown (direct, bypassing chaos) exits 0"
"$CUSZP" remote shutdown -s "$ADDR" > /dev/null
SERVE_STATUS=0
wait "$SERVER_PID" || SERVE_STATUS=$?
SERVER_PID=""
[[ "$SERVE_STATUS" -eq 0 ]] || { echo "FAIL: serve exited $SERVE_STATUS"; cat "$WORK/serve.err"; exit 1; }

echo "chaos smoke green."
