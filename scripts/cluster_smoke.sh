#!/usr/bin/env bash
# Cluster smoke test, two phases over real `cuszp serve` processes
# (3-node ring, k=2 data + m=1 parity):
#
#  memory phase — store archives, kill -9 one node mid-workload, read
#  everything back cmp-equal (live failover + degraded reconstruction),
#  restart the dead node EMPTY, heal it with `cuszp cluster-scrub`, and
#  kill a different node to prove the repair took.
#
#  durable phase — the same ring with `--data-dir --fsync always`:
#  kill -9 a node, restart it WITH its data directory, and require
#  cmp-equal reads with NO scrub at all — the log-structured store's
#  recovery serves every fsynced shard from disk (scrub then confirms
#  zero repairs, and `cuszp store-fsck` reports the directory clean).
#
# Stays fast on a 1-CPU container.
set -euo pipefail
cd "$(dirname "$0")/.."

CUSZP=target/release/cuszp
if [[ ! -x "$CUSZP" ]]; then
    echo "==> building release cuszp binary"
    cargo build --release --bin cuszp
fi

WORK=$(mktemp -d)
declare -a PIDS=("" "" "")
cleanup() {
    for pid in "${PIDS[@]}"; do
        [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

draw_port() {
    echo $((20000 + RANDOM % 40000))
}

# Starts cluster node $1 (1-based) on its ring port; writes the PID
# into PIDS[$1-1]. When DATA_BASE is set the node gets a durable store
# under $DATA_BASE/node$1 with --fsync always. Returns nonzero if the
# node never reports listening.
start_node() {
    local id=$1
    local port=${PORTS[$((id - 1))]}
    local extra=()
    if [[ -n "${DATA_BASE:-}" ]]; then
        extra=(--data-dir "$DATA_BASE/node$id" --fsync always)
    fi
    "$CUSZP" serve -a "127.0.0.1:$port" --workers 2 \
        --node-id "$id" --ring "$RING" --ring-epoch 1 --ring-parity 1/2 \
        "${extra[@]+"${extra[@]}"}" \
        > "$WORK/node$id.out" 2> "$WORK/node$id.err" &
    PIDS[$((id - 1))]=$!
    local up=""
    for _ in $(seq 1 50); do
        up=$(sed -n 's/^cuszp-server listening on //p' "$WORK/node$id.out")
        [[ -n "$up" ]] && return 0
        kill -0 "${PIDS[$((id - 1))]}" 2>/dev/null || return 1
        sleep 0.1
    done
    return 1
}

# Draws three distinct free ports and boots the ring on them, retrying
# on collisions. Sets PORTS, RING, SEEDS.
boot_ring() {
    local booted=0
    for attempt in $(seq 1 5); do
        PORTS=("$(draw_port)" "$(draw_port)" "$(draw_port)")
        [[ "${PORTS[0]}" != "${PORTS[1]}" && "${PORTS[1]}" != "${PORTS[2]}" \
            && "${PORTS[0]}" != "${PORTS[2]}" ]] || continue
        RING="1=127.0.0.1:${PORTS[0]},2=127.0.0.1:${PORTS[1]},3=127.0.0.1:${PORTS[2]}"
        local ok=1
        for id in 1 2 3; do
            start_node "$id" || { ok=0; break; }
        done
        if [[ "$ok" -eq 1 ]]; then
            booted=1
            break
        fi
        echo "    attempt $attempt: a drawn port was taken; redrawing"
        for i in 0 1 2; do
            [[ -n "${PIDS[$i]}" ]] && kill -9 "${PIDS[$i]}" 2>/dev/null || true
            PIDS[$i]=""
        done
    done
    [[ "$booted" -eq 1 ]] || { echo "FAIL: could not boot the ring"; cat "$WORK"/node*.err; exit 1; }
    SEEDS="127.0.0.1:${PORTS[0]},127.0.0.1:${PORTS[1]},127.0.0.1:${PORTS[2]}"
    echo "    ring up: $RING"
}

# Gracefully stops every live node.
stop_ring() {
    for n in 0 1 2; do
        if [[ -n "${PIDS[$n]}" ]]; then
            "$CUSZP" remote shutdown -s "127.0.0.1:${PORTS[$n]}" > /dev/null 2>&1 || true
        fi
    done
    for n in 0 1 2; do
        if [[ -n "${PIDS[$n]}" ]]; then
            wait "${PIDS[$n]}" || true
            PIDS[$n]=""
        fi
    done
}

echo "==> booting the 3-node ring (k=2, m=1, in-memory stores)"
boot_ring

echo "==> the ring op answers from any member"
"$CUSZP" cluster ring --seeds "$SEEDS" > "$WORK/ring.out"
grep -q '^epoch 1: 2 data + 1 parity' "$WORK/ring.out" \
    || { echo "FAIL: unexpected ring"; cat "$WORK/ring.out"; exit 1; }

echo "==> generating and compressing three small archives"
for i in 1 2 3; do
    "$CUSZP" gen -o "$WORK/field$i.f32" --dataset cesm --field FSDSC --scale tiny 2> "$WORK/gen$i.log"
    DIMS=$(sed -n 's/.*-d \([0-9x]*\)$/\1/p' "$WORK/gen$i.log")
    "$CUSZP" compress -i "$WORK/field$i.f32" -o "$WORK/arch$i.csz" -d "$DIMS" \
        -e "1e-$((i + 2))" --threads 2 2> /dev/null
done

echo "==> cluster put (erasure-coded placement across the ring)"
for i in 1 2 3; do
    "$CUSZP" cluster put "arch-$i" -i "$WORK/arch$i.csz" --seeds "$SEEDS" 2> /dev/null
done

echo "==> healthy reads are cmp-equal"
for i in 1 2 3; do
    "$CUSZP" cluster get "arch-$i" -o "$WORK/back$i.csz" --seeds "$SEEDS" 2> /dev/null
    cmp "$WORK/arch$i.csz" "$WORK/back$i.csz" \
        || { echo "FAIL: healthy read of arch-$i differs"; exit 1; }
done

echo "==> kill -9 node 2 mid-workload"
(
    for _ in $(seq 1 20); do
        "$CUSZP" cluster get "arch-1" -o /dev/null --seeds "$SEEDS" 2> /dev/null || true
    done
) &
READER=$!
sleep 0.2
kill -9 "${PIDS[1]}"
PIDS[1]=""
wait "$READER" || true

echo "==> every archive still reads cmp-equal with node 2 dead"
for i in 1 2 3; do
    "$CUSZP" cluster get "arch-$i" -o "$WORK/deg$i.csz" --seeds "$SEEDS" 2> "$WORK/deg$i.err"
    cmp "$WORK/arch$i.csz" "$WORK/deg$i.csz" \
        || { echo "FAIL: degraded read of arch-$i differs"; cat "$WORK/deg$i.err"; exit 1; }
done

echo "==> restart node 2 empty and heal it with cluster-scrub"
start_node 2 || { echo "FAIL: node 2 did not restart"; cat "$WORK/node2.err"; exit 1; }
"$CUSZP" cluster-scrub --seeds "$SEEDS" > "$WORK/scrub.out" 2> /dev/null
grep -q ' 0 unrepairable, 0 unreachable' "$WORK/scrub.out" \
    || { echo "FAIL: scrub left damage"; cat "$WORK/scrub.out"; exit 1; }
grep -qE 'scrubbed 3 key\(s\): [1-9][0-9]* shard\(s\) re-replicated' "$WORK/scrub.out" \
    || { echo "FAIL: scrub repaired nothing"; cat "$WORK/scrub.out"; exit 1; }

echo "==> kill -9 node 3; the healed node 2 must carry its share"
kill -9 "${PIDS[2]}"
PIDS[2]=""
for i in 1 2 3; do
    "$CUSZP" cluster get "arch-$i" -o "$WORK/deg2_$i.csz" --seeds "$SEEDS" 2> /dev/null
    cmp "$WORK/arch$i.csz" "$WORK/deg2_$i.csz" \
        || { echo "FAIL: post-repair read of arch-$i differs"; exit 1; }
done

echo "==> graceful shutdown of the survivors"
stop_ring

# ---------------------------------------------------------------------
# Durable phase: the same workload against log-structured data dirs.
# ---------------------------------------------------------------------
DATA_BASE="$WORK/data"
echo "==> booting a fresh ring with durable stores (--data-dir, --fsync always)"
boot_ring
grep -q 'durable shard store' "$WORK/node1.err" \
    || { echo "FAIL: node 1 did not report a durable store"; cat "$WORK/node1.err"; exit 1; }

echo "==> cluster put onto the durable ring"
for i in 1 2 3; do
    "$CUSZP" cluster put "arch-$i" -i "$WORK/arch$i.csz" --seeds "$SEEDS" 2> /dev/null
done

echo "==> kill -9 node 2, restart it WITH its data directory"
kill -9 "${PIDS[1]}"
PIDS[1]=""
start_node 2 || { echo "FAIL: node 2 did not restart durably"; cat "$WORK/node2.err"; exit 1; }
grep -q 'recovery: clean' "$WORK/node2.err" \
    || { echo "FAIL: node 2 recovery not clean"; cat "$WORK/node2.err"; exit 1; }

echo "==> every archive reads cmp-equal WITHOUT any scrub"
for i in 1 2 3; do
    "$CUSZP" cluster get "arch-$i" -o "$WORK/dur$i.csz" --seeds "$SEEDS" 2> "$WORK/dur$i.err"
    cmp "$WORK/arch$i.csz" "$WORK/dur$i.csz" \
        || { echo "FAIL: post-restart read of arch-$i differs"; cat "$WORK/dur$i.err"; exit 1; }
done

echo "==> scrub confirms the restart needed zero repairs"
"$CUSZP" cluster-scrub --seeds "$SEEDS" > "$WORK/scrub2.out" 2> /dev/null
grep -q 'scrubbed 3 key(s): 0 shard(s) re-replicated, 0 unrepairable, 0 unreachable' \
    "$WORK/scrub2.out" \
    || { echo "FAIL: durable restart required repairs"; cat "$WORK/scrub2.out"; exit 1; }

echo "==> graceful shutdown; store-fsck reports every data dir clean"
stop_ring
for id in 1 2 3; do
    "$CUSZP" store-fsck "$DATA_BASE/node$id" > "$WORK/fsck$id.out" \
        || { echo "FAIL: store-fsck flagged node $id"; cat "$WORK/fsck$id.out"; exit 1; }
    grep -q 'clean' "$WORK/fsck$id.out" \
        || { echo "FAIL: fsck output for node $id"; cat "$WORK/fsck$id.out"; exit 1; }
done

echo "cluster smoke green."
