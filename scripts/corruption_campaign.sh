#!/usr/bin/env bash
# Deterministic corruption campaign: every fault-injection suite in one
# sweep, on fixed seeds so any failure replays bit-identically.
#
# The seeded campaigns live in crates/core/tests/recovery_campaign.rs
# (cuszp-faultsim, seed 0xC52A_2021_FA17_0001, 256 mutations) and
# crates/core/tests/repair_campaign.rs (parity-aware, seed
# 0xC52A_2021_FA17_0002, 256 shard-precise mutations); the property
# sweeps replay on PROPTEST_SEED (shim default if unset).
set -euo pipefail
cd "$(dirname "$0")/.."

# Pin the property-test seed explicitly so the sweep is reproducible even
# if the shim's default ever changes. Override by exporting PROPTEST_SEED.
export PROPTEST_SEED="${PROPTEST_SEED:-13907096265813992261}"

echo "==> faultsim harness self-tests"
cargo test -q -p cuszp-faultsim

echo "==> seeded recovery campaign (>=200 mutations)"
cargo test -q -p cuszp-core --test recovery_campaign

echo "==> seeded parity-repair campaign (256 shard-precise mutations)"
cargo test -q -p cuszp-core --test repair_campaign

echo "==> failure injection (v1 + chunked containers)"
cargo test -q --test failure_injection --test failure_injection_chunked

echo "==> property-based corruption sweep (PROPTEST_SEED=$PROPTEST_SEED)"
cargo test -q --test proptest_corruption

echo "Corruption campaign green."
