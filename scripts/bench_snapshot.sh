#!/usr/bin/env bash
# Write a performance snapshot (per-workflow compress/decompress
# throughput + loopback service round-trip latency) to BENCH_<n>.json.
# One snapshot is checked in per PR so the perf trajectory accumulates.
#
#   scripts/bench_snapshot.sh [n]      # default: next free index
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-}"
if [[ -z "$N" ]]; then
    N=1
    while [[ -e "BENCH_${N}.json" ]]; do N=$((N + 1)); done
fi
OUT="BENCH_${N}.json"

echo "==> building release bench_snapshot"
cargo build --release --example bench_snapshot

echo "==> running (field generation + 3 reps per workflow + loopback server)"
./target/release/examples/bench_snapshot > "$OUT"

echo "==> wrote $OUT"
cat "$OUT"
