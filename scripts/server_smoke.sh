#!/usr/bin/env bash
# Server smoke test: boot `cuszp serve` on an ephemeral port, drive a
# remote compress -> decompress -> scan round trip plus stats, then
# shut down gracefully and require a clean exit. Designed to stay fast
# on a 1-CPU container (tiny field, release binary reused from the CI
# build).
set -euo pipefail
cd "$(dirname "$0")/.."

CUSZP=target/release/cuszp
if [[ ! -x "$CUSZP" ]]; then
    echo "==> building release cuszp binary"
    cargo build --release --bin cuszp
fi

WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "==> generating a small field"
"$CUSZP" gen -o "$WORK/field.f32" --dataset cesm --field FSDSC --scale tiny 2> "$WORK/gen.log"
DIMS=$(sed -n 's/.*-d \([0-9x]*\)$/\1/p' "$WORK/gen.log")
[[ -n "$DIMS" ]] || { echo "FAIL: could not discover field dims"; cat "$WORK/gen.log"; exit 1; }

echo "==> booting cuszp serve on an ephemeral port"
"$CUSZP" serve -a 127.0.0.1:0 --workers 2 --cache-bytes 8388608 > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^cuszp-server listening on //p' "$WORK/serve.out")
    [[ -n "$ADDR" ]] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: server died at boot"; cat "$WORK/serve.err"; exit 1; }
    sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "FAIL: server never reported its address"; exit 1; }
echo "    server at $ADDR (pid $SERVER_PID)"

echo "==> remote ping"
"$CUSZP" remote ping -s "$ADDR" > /dev/null

echo "==> remote compress ($DIMS, parity 2/8)"
"$CUSZP" remote compress -s "$ADDR" -i "$WORK/field.f32" -o "$WORK/field.csz" \
    -d "$DIMS" -e 1e-3 --parity 2/8 2> /dev/null

echo "==> served bytes match the local chunked compressor"
"$CUSZP" compress -i "$WORK/field.f32" -o "$WORK/local.csz" -d "$DIMS" -e 1e-3 \
    --threads 2 --parity 2/8 2> /dev/null
cmp "$WORK/field.csz" "$WORK/local.csz" \
    || { echo "FAIL: served archive differs from local bytes"; exit 1; }

echo "==> remote decompress + local verification"
"$CUSZP" remote decompress "$WORK/field.csz" -s "$ADDR" -o "$WORK/recon.f32" 2> /dev/null
"$CUSZP" decompress -i "$WORK/field.csz" -o /dev/null --verify "$WORK/field.f32" 2> /dev/null

echo "==> remote scan (clean archive must exit 0)"
"$CUSZP" remote scan "$WORK/field.csz" -s "$ADDR" --json > "$WORK/scan.json"
grep -q '"exit_code":0' "$WORK/scan.json" || { echo "FAIL: scan not clean"; cat "$WORK/scan.json"; exit 1; }

echo "==> remote get-range round trip (twice: cold, then from the slab cache)"
NY=${DIMS%x*}
NX=${DIMS#*x}
RANGE="1:$((NY / 2))x2:$((NX - 3))"
"$CUSZP" extract -i "$WORK/field.csz" -o "$WORK/ref_slice.raw" --range "$RANGE" 2> /dev/null
"$CUSZP" remote get-range "$WORK/field.csz" -s "$ADDR" -o "$WORK/slice_cold.raw" --range "$RANGE" 2> /dev/null
"$CUSZP" remote get-range "$WORK/field.csz" -s "$ADDR" -o "$WORK/slice_hot.raw" --range "$RANGE" 2> /dev/null
cmp "$WORK/ref_slice.raw" "$WORK/slice_cold.raw" \
    || { echo "FAIL: served range differs from local extract"; exit 1; }
cmp "$WORK/ref_slice.raw" "$WORK/slice_hot.raw" \
    || { echo "FAIL: cached range read differs from local extract"; exit 1; }

echo "==> remote stats shows the traffic"
"$CUSZP" remote stats -s "$ADDR" > "$WORK/stats.out"
grep -q '^compress ' "$WORK/stats.out" || { echo "FAIL: no compress stats"; cat "$WORK/stats.out"; exit 1; }
grep -q '^decompress ' "$WORK/stats.out" || { echo "FAIL: no decompress stats"; cat "$WORK/stats.out"; exit 1; }
grep -q '^get_range ' "$WORK/stats.out" || { echo "FAIL: no get_range stats"; cat "$WORK/stats.out"; exit 1; }
grep -q '^slab cache: [1-9]' "$WORK/stats.out" \
    || { echo "FAIL: second get-range did not hit the slab cache"; cat "$WORK/stats.out"; exit 1; }

echo "==> graceful shutdown exits 0"
"$CUSZP" remote shutdown -s "$ADDR" > /dev/null
SERVE_STATUS=0
wait "$SERVER_PID" || SERVE_STATUS=$?
SERVER_PID=""
[[ "$SERVE_STATUS" -eq 0 ]] || { echo "FAIL: serve exited $SERVE_STATUS"; cat "$WORK/serve.err"; exit 1; }

echo "server smoke green."
