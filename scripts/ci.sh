#!/usr/bin/env bash
# The full CI gate: formatting, lints, release build, and every test.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run

echo "==> corruption campaign (seeded fault injection)"
scripts/corruption_campaign.sh

echo "==> golden compatibility (parity-less bytes pinned, parity strictly additive)"
cargo test -q -p cuszp-core --test golden

echo "==> range battery (ranges bit-equal full-decompress slices at any worker count)"
cargo test -q -p cuszp-core --test range

echo "==> ratio regression (auto codec plan vs forced lorenzo+huffman)"
cargo test -q --test ratio_regression

echo "==> lossless stage property tests (LZ77 + bitshuffle round-trip, bounded decode)"
cargo test -q -p cuszp-lossless --test lz77_props --test proptests

echo "==> hot-slab cache behavior (hits, eviction, invalidation, concurrency)"
cargo test -q -p cuszp-server --test cache

echo "==> targeted fault injection through get-range (heal/report/ignore)"
cargo test -q -p cuszp-server --test range_damage

echo "==> wire-header fuzzing (arbitrary frames classify as exactly one WireError)"
cargo test -q -p cuszp-server --test wire_fuzz

echo "==> chaos soak battery (proxied faults: retries, deadlines, load shedding)"
cargo test -q -p cuszp-server --test chaos

echo "==> retry deadline clamps (reconnect churn bounded by the per-call deadline)"
cargo test -q -p cuszp-server --test retry_deadline

echo "==> placement ring properties (purity, distinctness, bounded remap)"
cargo test -q -p cuszp-server --test ring_props

echo "==> durable store engine (codec props, model tests, crash-point campaign)"
cargo test -q -p cuszp-store

echo "==> cluster tier (failover, degraded reads, redirects, anti-entropy repair)"
cargo test -q -p cuszp-server --test cluster

echo "==> durable cluster (full restart from disk, damaged-segment scrub heal)"
cargo test -q -p cuszp-server --test durable_cluster

echo "==> node-death campaign (64 seeded kills, bit-identity under every one)"
cargo test -q -p cuszp-server --test cluster_death

echo "==> server smoke (ephemeral port, remote round trip, graceful shutdown)"
scripts/server_smoke.sh

echo "==> chaos smoke (remote round trip through a seeded fault-injection proxy)"
scripts/chaos_smoke.sh

echo "==> cluster smoke (kill -9 a node: memory heals by scrub, durable by its data dir)"
scripts/cluster_smoke.sh

echo "CI green."
