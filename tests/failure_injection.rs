//! Failure injection: corrupted, truncated, and tampered archives must
//! surface errors — never panic, never silently return wrong data.

use cuszp::{Compressor, Config, CuszpError, Dims, ErrorBound, WorkflowChoice, WorkflowMode};

fn sample_archive(wf: WorkflowChoice) -> Vec<u8> {
    let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin() * 5.0).collect();
    let c = Compressor::new(Config {
        error_bound: ErrorBound::Absolute(1e-3),
        workflow: WorkflowMode::Force(wf),
        ..Config::default()
    });
    c.compress(&data, Dims::D1(4096)).unwrap().to_bytes()
}

#[test]
fn truncation_at_every_boundary_errors_cleanly() {
    for wf in [
        WorkflowChoice::Huffman,
        WorkflowChoice::Rle,
        WorkflowChoice::RleVle,
    ] {
        let bytes = sample_archive(wf);
        // Cut at a spread of positions including header, outliers, codes.
        for cut in [
            0usize,
            1,
            4,
            7,
            30,
            60,
            80,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            let r = cuszp::decompress(&bytes[..cut.min(bytes.len())]);
            assert!(r.is_err(), "truncated at {cut} must fail ({})", wf.name());
        }
    }
}

#[test]
fn single_bit_flips_are_detected() {
    for wf in [
        WorkflowChoice::Huffman,
        WorkflowChoice::Rle,
        WorkflowChoice::RleVle,
    ] {
        let bytes = sample_archive(wf);
        // Flip a bit every ~97 bytes; every flip must be either caught
        // (checksum / structural error) — silent corruption of payload
        // bytes is impossible because FNV covers the payload, and header
        // flips break magic/rank/len checks.
        let mut caught = 0usize;
        let mut total = 0usize;
        for pos in (0..bytes.len()).step_by(97) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            total += 1;
            match cuszp::decompress(&corrupt) {
                Err(_) => caught += 1,
                Ok((data, dims)) => {
                    // A flip in the header's eb field (bytes 32..40)
                    // changes only the dequantization scale, which the
                    // checksum cannot see (it guards the payload).
                    // Anything else must at least stay structurally
                    // consistent.
                    assert!(
                        (32..40).contains(&pos) || data.len() == dims.len(),
                        "flip at {pos} silently accepted ({})",
                        wf.name()
                    );
                }
            }
        }
        assert!(
            caught * 10 >= total * 9,
            "{}: only {caught}/{total} flips caught",
            wf.name()
        );
    }
}

#[test]
fn version_and_magic_are_enforced() {
    let mut bytes = sample_archive(WorkflowChoice::Huffman);
    // Magic at offset 0..4.
    bytes[0] ^= 0xFF;
    assert!(matches!(
        cuszp::decompress(&bytes),
        Err(CuszpError::MalformedArchive(_))
    ));
    let mut bytes = sample_archive(WorkflowChoice::Huffman);
    // Version at offset 4..6.
    bytes[4] = 0xEE;
    assert!(matches!(
        cuszp::decompress(&bytes),
        Err(CuszpError::UnsupportedVersion(_))
    ));
}

#[test]
fn empty_and_garbage_inputs() {
    assert!(cuszp::decompress(&[]).is_err());
    assert!(cuszp::decompress(b"not an archive at all").is_err());
    let garbage: Vec<u8> = (0..10_000u32).map(|i| (i * 31) as u8).collect();
    assert!(cuszp::decompress(&garbage).is_err());
}

#[test]
fn rank_tampering_is_rejected() {
    let mut bytes = sample_archive(WorkflowChoice::Huffman);
    // Rank byte at offset 7 (after magic u32 + version u16 + workflow u8).
    bytes[7] = 9;
    assert!(cuszp::decompress(&bytes).is_err(), "bad rank accepted");
}

#[test]
fn compressor_input_validation() {
    let c = Compressor::default();
    assert!(matches!(
        c.compress(&[1.0; 10], Dims::D1(11)),
        Err(CuszpError::DimsMismatch { .. })
    ));
    assert!(matches!(
        c.compress(&[f32::INFINITY], Dims::D1(1)),
        Err(CuszpError::NonFiniteInput)
    ));
    let c = Compressor::new(Config {
        error_bound: ErrorBound::Absolute(f64::NAN),
        ..Config::default()
    });
    assert!(matches!(
        c.compress(&[1.0], Dims::D1(1)),
        Err(CuszpError::InvalidErrorBound(_))
    ));
}
