//! Integration tests for the user-selectable predictor (Lorenzo vs
//! multi-level cubic interpolation) through the full archive pipeline.

use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::metrics::verify_error_bound;
use cuszp::{Compressor, Config, Dims, ErrorBound, Predictor, PredictorMode};

#[test]
fn interpolation_round_trips_through_archives() {
    for kind in [DatasetKind::Nyx, DatasetKind::CesmAtm, DatasetKind::Hacc] {
        let spec = dataset_fields(kind)[0];
        let field = generate(&spec, Scale::Tiny);
        let config = Config {
            error_bound: ErrorBound::Relative(1e-3),
            predictor: PredictorMode::Force(Predictor::Interpolation),
            ..Config::default()
        };
        let eb = config.error_bound.absolute(&field.data);
        let archive = Compressor::new(config)
            .compress(&field.data, field.dims)
            .unwrap();
        assert_eq!(archive.predictor, Predictor::Interpolation);
        let bytes = archive.to_bytes();
        let (recon, dims) = cuszp::decompress(&bytes).unwrap();
        assert_eq!(dims, field.dims);
        verify_error_bound(&field.data, &recon, eb)
            .unwrap_or_else(|(i, e)| panic!("{}: bound violated at {i}: {e}", spec.name));
    }
}

#[test]
fn predictor_survives_serialization() {
    let data: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.01).sin()).collect();
    for predictor in [Predictor::Lorenzo, Predictor::Interpolation] {
        let config = Config {
            predictor: predictor.into(),
            ..Config::default()
        };
        let archive = Compressor::new(config)
            .compress(&data, Dims::D1(2048))
            .unwrap();
        let parsed = cuszp::Archive::from_bytes(&archive.to_bytes()).unwrap();
        assert_eq!(parsed.predictor, predictor);
        // Decompression must dispatch to the matching reconstruction.
        let (recon, _) = cuszp::decompress(&archive.to_bytes()).unwrap();
        assert_eq!(recon.len(), 2048);
    }
}

#[test]
fn interpolation_wins_on_smooth_3d_lorenzo_on_rowwise_fields() {
    // The ablation's head-to-head, asserted: cubic interpolation beats
    // Lorenzo on a long-range-smooth 3-D field; the zonal FSDSC (runs
    // along rows) favors Lorenzo+RLE.
    let smooth = generate(&dataset_fields(DatasetKind::Miranda)[0], Scale::Tiny);
    let measure = |field: &cuszp::datagen::Field, predictor| {
        let c = Compressor::new(Config {
            error_bound: ErrorBound::Relative(1e-3),
            predictor: PredictorMode::Force(predictor),
            ..Config::default()
        });
        let (_, stats) = c.compress_with_stats(&field.data, field.dims).unwrap();
        stats.compression_ratio()
    };
    let lorenzo = measure(&smooth, Predictor::Lorenzo);
    let interp = measure(&smooth, Predictor::Interpolation);
    assert!(
        interp > lorenzo,
        "Miranda/density: interpolation {interp:.2} should beat Lorenzo {lorenzo:.2}"
    );
}

#[test]
fn f64_supports_both_predictors() {
    let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.002).sin() * 3.0).collect();
    for predictor in [Predictor::Lorenzo, Predictor::Interpolation] {
        let config = Config {
            error_bound: ErrorBound::Absolute(1e-8),
            predictor: predictor.into(),
            ..Config::default()
        };
        let archive = Compressor::new(config)
            .compress_f64(&data, Dims::D1(4096))
            .unwrap();
        let (recon, _) = cuszp::decompress_f64(&archive.to_bytes()).unwrap();
        for (o, r) in data.iter().zip(&recon) {
            assert!(
                (o - r).abs() <= 1e-8 * 1.001,
                "{}: {o} vs {r}",
                predictor.name()
            );
        }
    }
}
