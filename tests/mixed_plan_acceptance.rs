//! Acceptance test for per-chunk codec plans: one CSZ2 archive whose
//! chunks auto-select **different** plans on a mixed-character field,
//! decoding within bound and serializing bit-identically at any worker
//! count.
//!
//! The field concatenates two datagen regimes along the slow axis —
//! Miranda-`pressure`-smooth rows first, HACC-`vx`-rough rows after —
//! so the leading chunks reward interpolation and the trailing chunks
//! keep Lorenzo.

use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::metrics::verify_error_bound;
use cuszp::parallel::WorkerPool;
use cuszp::{Compressor, Config, Dims, ErrorBound, LosslessMode, PredictorMode, WorkflowMode};
use std::collections::BTreeSet;

/// Builds the mixed field: smooth rows then rough rows, one D2 field.
fn mixed_field() -> (Vec<f32>, Dims) {
    let smooth = {
        let spec = dataset_fields(DatasetKind::Miranda)
            .into_iter()
            .find(|s| s.name == "pressure")
            .unwrap();
        generate(&spec, Scale::Tiny).data
    };
    let rough = {
        let spec = dataset_fields(DatasetKind::Hacc)
            .into_iter()
            .find(|s| s.name == "vx")
            .unwrap();
        generate(&spec, Scale::Tiny).data
    };
    let nx = 500usize;
    let rows_each = smooth.len().min(rough.len()) / nx;
    let mut data = Vec::with_capacity(2 * rows_each * nx);
    data.extend_from_slice(&smooth[..rows_each * nx]);
    data.extend_from_slice(&rough[..rows_each * nx]);
    (
        data,
        Dims::D2 {
            ny: 2 * rows_each,
            nx,
        },
    )
}

fn auto_config() -> Config {
    Config {
        error_bound: ErrorBound::Relative(1e-3),
        predictor: PredictorMode::Auto,
        workflow: WorkflowMode::Auto,
        lossless: LosslessMode::Auto,
        ..Config::default()
    }
}

#[test]
fn one_archive_mixes_plans_and_stays_deterministic() {
    let (data, dims) = mixed_field();
    let config = auto_config();
    let eb = config.error_bound.absolute(&data);
    let chunk_target = dims.len() / 6;

    let compress_at = |workers: usize| {
        Compressor::new(config)
            .compress_chunked_with(&data, dims, chunk_target, &WorkerPool::new(workers))
            .unwrap()
    };

    let arc = compress_at(1);
    assert!(arc.n_chunks() >= 4, "need several chunks to mix plans");

    // The archive must mix at least two distinct auto-selected plans.
    let labels: BTreeSet<String> = arc.chunks.iter().map(|c| c.plan().label()).collect();
    assert!(
        labels.len() >= 2,
        "expected a plan mix, got only {labels:?}"
    );

    // Round trip within bound.
    let bytes = arc.to_bytes();
    let (recon, rdims) = cuszp::decompress(&bytes).unwrap();
    assert_eq!(rdims, dims);
    verify_error_bound(&data, &recon, eb)
        .unwrap_or_else(|(i, e)| panic!("bound violated at {i}: {e}"));

    // Bit-deterministic at any worker count: plan probes are pure
    // functions of each chunk's bytes, so the worker schedule is
    // invisible in the output.
    for workers in [2usize, 8] {
        assert_eq!(
            compress_at(workers).to_bytes(),
            bytes,
            "archive bytes differ at {workers} workers"
        );
    }
}
