//! Property-based end-to-end tests: arbitrary fields, dims, bounds, and
//! workflows through the full serialize/parse pipeline.

use cuszp::{Compressor, Config, Dims, ErrorBound, WorkflowChoice, WorkflowMode};
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = Dims> {
    prop_oneof![
        (1usize..3000).prop_map(Dims::D1),
        ((1usize..40), (1usize..40)).prop_map(|(ny, nx)| Dims::D2 { ny, nx }),
        ((1usize..12), (1usize..12), (1usize..12)).prop_map(|(nz, ny, nx)| Dims::D3 { nz, ny, nx }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_fields_round_trip(
        dims in arb_dims(),
        seed in any::<u64>(),
        eb_exp in -4i32..-1,
        wf in prop::sample::select(vec![
            WorkflowMode::Auto,
            WorkflowMode::Force(WorkflowChoice::Huffman),
            WorkflowMode::Force(WorkflowChoice::Rle),
            WorkflowMode::Force(WorkflowChoice::RleVle),
        ]),
    ) {
        let n = dims.len();
        // Mixed-character data: smooth base + noise + occasional spikes.
        let data: Vec<f32> = (0..n).map(|i| {
            let h = (seed ^ i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let noise = ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
            let spike = if h.is_multiple_of(997) { 50.0 } else { 0.0 };
            (i as f32 * 0.01).sin() * 3.0 + noise + spike
        }).collect();
        let eb = 10f64.powi(eb_exp);
        let config = Config {
            error_bound: ErrorBound::Absolute(eb),
            workflow: wf,
            ..Config::default()
        };
        let archive = Compressor::new(config).compress(&data, dims).unwrap();
        let bytes = archive.to_bytes();
        let (recon, got_dims) = cuszp::decompress(&bytes).unwrap();
        prop_assert_eq!(got_dims, dims);
        for (o, r) in data.iter().zip(&recon) {
            let slack = eb * (1.0 + 1e-6) + (o.abs() as f64) * f32::EPSILON as f64;
            prop_assert!(
                ((o - r).abs() as f64) <= slack,
                "bound {} violated: {} vs {}", eb, o, r
            );
        }
    }

    #[test]
    fn constant_fields_compress_and_round_trip(
        value in -1e6f32..1e6,
        n in 1usize..5000,
    ) {
        let data = vec![value; n];
        let config = Config {
            error_bound: ErrorBound::Absolute(1e-3 * (value.abs() as f64 + 1.0)),
            ..Config::default()
        };
        let eb = config.error_bound.absolute(&data);
        let archive = Compressor::new(config).compress(&data, Dims::D1(n)).unwrap();
        let (recon, _) = cuszp::decompress(&archive.to_bytes()).unwrap();
        for (o, r) in data.iter().zip(&recon) {
            let slack = eb * (1.0 + 1e-6) + (o.abs() as f64) * f32::EPSILON as f64;
            prop_assert!(((o - r).abs() as f64) <= slack);
        }
    }

    #[test]
    fn archive_parse_never_panics_on_mutations(
        mutation_pos in 0usize..500,
        mutation_val in any::<u8>(),
    ) {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.02).cos()).collect();
        let archive = Compressor::default().compress(&data, Dims::D1(1000)).unwrap();
        let mut bytes = archive.to_bytes();
        let pos = mutation_pos % bytes.len();
        bytes[pos] = mutation_val;
        // Must return (not panic); content equality checks are the
        // checksum's job, exercised elsewhere.
        let _ = cuszp::decompress(&bytes);
    }
}
