//! End-to-end integration: every dataset class × every workflow × every
//! reconstruction engine must round-trip through serialized archives
//! within the error bound.

use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::metrics::verify_error_bound;
use cuszp::{Compressor, Config, ErrorBound, ReconstructEngine, WorkflowChoice, WorkflowMode};

#[test]
fn every_dataset_round_trips_under_every_workflow() {
    for kind in DatasetKind::ALL {
        // First and last field of each dataset: covers both regimes.
        let specs = dataset_fields(kind);
        let picks = [specs[0], *specs.last().unwrap()];
        for spec in picks {
            let field = generate(&spec, Scale::Tiny);
            for wf in [
                WorkflowMode::Auto,
                WorkflowMode::Force(WorkflowChoice::Huffman),
                WorkflowMode::Force(WorkflowChoice::Rle),
                WorkflowMode::Force(WorkflowChoice::RleVle),
            ] {
                let config = Config {
                    error_bound: ErrorBound::Relative(1e-3),
                    workflow: wf,
                    ..Config::default()
                };
                let eb = config.error_bound.absolute(&field.data);
                let compressor = Compressor::new(config);
                let archive = compressor
                    .compress(&field.data, field.dims)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", kind.name(), spec.name));
                let bytes = archive.to_bytes();
                let (recon, dims) = cuszp::decompress(&bytes)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", kind.name(), spec.name));
                assert_eq!(dims, field.dims);
                verify_error_bound(&field.data, &recon, eb).unwrap_or_else(|(i, e)| {
                    panic!(
                        "{}/{} wf {wf:?}: bound violated at {i}: {e} > {eb}",
                        kind.name(),
                        spec.name
                    )
                });
            }
        }
    }
}

#[test]
fn all_engines_reconstruct_identically_from_the_same_archive() {
    let spec = dataset_fields(DatasetKind::Hurricane)[1];
    let field = generate(&spec, Scale::Tiny);
    let compressor = Compressor::new(Config {
        error_bound: ErrorBound::Relative(1e-4),
        ..Config::default()
    });
    let bytes = compressor
        .compress(&field.data, field.dims)
        .unwrap()
        .to_bytes();
    let (reference, _) =
        cuszp::decompress_with_engine(&bytes, ReconstructEngine::CoarseSerial).unwrap();
    for engine in [
        ReconstructEngine::FinePartialSumNaive,
        ReconstructEngine::FinePartialSum,
    ] {
        let (out, _) = cuszp::decompress_with_engine(&bytes, engine).unwrap();
        assert_eq!(out, reference, "engine {} diverged bitwise", engine.name());
    }
}

#[test]
fn workflow_choice_does_not_change_reconstruction() {
    // Coding is lossless: the decompressed field must be bit-identical
    // across workflows (only the archive size differs).
    let spec = dataset_fields(DatasetKind::CesmAtm)[3]; // FSDSC
    let field = generate(&spec, Scale::Tiny);
    let mut outputs = Vec::new();
    for wf in [
        WorkflowChoice::Huffman,
        WorkflowChoice::Rle,
        WorkflowChoice::RleVle,
    ] {
        let compressor = Compressor::new(Config {
            error_bound: ErrorBound::Relative(1e-2),
            workflow: WorkflowMode::Force(wf),
            ..Config::default()
        });
        let bytes = compressor
            .compress(&field.data, field.dims)
            .unwrap()
            .to_bytes();
        let (recon, _) = cuszp::decompress(&bytes).unwrap();
        outputs.push(recon);
    }
    assert_eq!(outputs[0], outputs[1], "RLE path altered the data");
    assert_eq!(outputs[0], outputs[2], "RLE+VLE path altered the data");
}

#[test]
fn tighter_bounds_give_larger_archives_and_better_quality() {
    let spec = dataset_fields(DatasetKind::Nyx)[3]; // velocity_x
    let field = generate(&spec, Scale::Tiny);
    let mut last_size = 0usize;
    let mut last_err = f64::INFINITY;
    for eb in [1e-2, 1e-3, 1e-4] {
        let compressor = Compressor::new(Config {
            error_bound: ErrorBound::Relative(eb),
            ..Config::default()
        });
        let bytes = compressor
            .compress(&field.data, field.dims)
            .unwrap()
            .to_bytes();
        let (recon, _) = cuszp::decompress(&bytes).unwrap();
        let stats = cuszp::metrics::ErrorStats::compute(&field.data, &recon);
        assert!(bytes.len() > last_size, "eb {eb}: archive must grow");
        assert!(stats.max_abs_err < last_err, "eb {eb}: error must shrink");
        last_size = bytes.len();
        last_err = stats.max_abs_err;
    }
}

#[test]
fn double_compression_is_idempotent_on_quality() {
    // Compressing an already-decompressed field at the same bound must
    // not degrade it further (the reconstruction is a fixed point of
    // prequantization at the same eb).
    let spec = dataset_fields(DatasetKind::Miranda)[0];
    let field = generate(&spec, Scale::Tiny);
    let compressor = Compressor::new(Config {
        error_bound: ErrorBound::Absolute(1e-3),
        ..Config::default()
    });
    let once = {
        let b = compressor
            .compress(&field.data, field.dims)
            .unwrap()
            .to_bytes();
        cuszp::decompress(&b).unwrap().0
    };
    let twice = {
        let b = compressor.compress(&once, field.dims).unwrap().to_bytes();
        cuszp::decompress(&b).unwrap().0
    };
    for (a, b) in once.iter().zip(&twice) {
        assert!(
            (a - b).abs() <= 1e-3 * 2.001,
            "second pass drifted: {a} vs {b}"
        );
    }
}
