//! Property-based corruption tests: arbitrary bytes and mutated valid
//! archives through every untrusted-input entry point. The properties
//! are the recovery contract's hard floor — no input may panic, and
//! memory stays proportional to the input (length fields are
//! bounds-checked against the buffer before any allocation).

use cuszp::{decompress_resilient, scan, Compressor, Config, Dims, ErrorBound, FillPolicy};
use proptest::prelude::*;

fn v1_archive() -> Vec<u8> {
    let data: Vec<f32> = (0..3000).map(|i| (i as f32 * 0.01).sin() * 2.0).collect();
    Compressor::default()
        .compress(&data, Dims::D1(3000))
        .unwrap()
        .to_bytes()
}

fn chunked_archive() -> Vec<u8> {
    let data: Vec<f32> = (0..5000).map(|i| (i as f32 * 0.02).cos()).collect();
    let c = Compressor::new(Config {
        error_bound: ErrorBound::Absolute(1e-3),
        ..Config::default()
    });
    c.compress_chunked_with(
        &data,
        Dims::D1(5000),
        1500,
        &cuszp::parallel::WorkerPool::with_default_workers(),
    )
    .unwrap()
    .to_bytes()
}

/// Every untrusted-input entry point on one buffer; asserts the shared
/// sanity property on anything that parses.
fn exercise_all_entry_points(bytes: &[u8]) -> Result<(), TestCaseError> {
    if let Ok((data, dims)) = cuszp::decompress(bytes) {
        prop_assert_eq!(data.len(), dims.len());
    }
    if let Ok(rf) = decompress_resilient(bytes, FillPolicy::Nan) {
        prop_assert_eq!(rf.data.len(), rf.dims.len());
        // Report lists are paid for by the input, never by a header claim.
        prop_assert!(rf.reports.len() <= bytes.len() / 8 + 8);
    }
    if let Ok(report) = scan(bytes) {
        prop_assert!(report.reports.len() <= bytes.len() / 8 + 8);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        exercise_all_entry_points(&bytes)?;
    }

    #[test]
    fn arbitrary_bytes_with_v1_magic_never_panic(
        tail in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut bytes = 0x2B5A_5343u32.to_le_bytes().to_vec();
        bytes.extend(tail);
        exercise_all_entry_points(&bytes)?;
    }

    #[test]
    fn arbitrary_bytes_with_chunked_magic_never_panic(
        tail in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut bytes = 0x325A_5343u32.to_le_bytes().to_vec();
        bytes.extend(tail);
        exercise_all_entry_points(&bytes)?;
    }

    #[test]
    fn mutated_v1_archives_never_panic(
        mutations in prop::collection::vec((any::<u64>(), any::<u8>()), 1..8),
        cut in any::<u64>(),
    ) {
        let mut bytes = v1_archive();
        for (pos, val) in &mutations {
            let pos = (*pos % bytes.len() as u64) as usize;
            bytes[pos] = *val;
        }
        let cut = (cut % (bytes.len() as u64 + 1)) as usize;
        bytes.truncate(cut);
        exercise_all_entry_points(&bytes)?;
    }

    #[test]
    fn mutated_chunked_archives_never_panic(
        mutations in prop::collection::vec((any::<u64>(), any::<u8>()), 1..8),
        cut in any::<u64>(),
    ) {
        let mut bytes = chunked_archive();
        for (pos, val) in &mutations {
            let pos = (*pos % bytes.len() as u64) as usize;
            bytes[pos] = *val;
        }
        let cut = (cut % (bytes.len() as u64 + 1)) as usize;
        bytes.truncate(cut);
        exercise_all_entry_points(&bytes)?;
    }
}
