//! Failure injection for CSZ2 chunked containers, mirroring
//! `failure_injection.rs` for the v1 format: corrupted, truncated, and
//! tampered containers must surface structured errors on the strict
//! path — never panic, never over-allocate, never silently return wrong
//! data — while the resilient path recovers what it can.

use cuszp::{
    decompress_resilient, scan, ChunkStatus, Compressor, Config, CuszpError, Dims, ErrorBound,
    FillPolicy,
};
use cuszp_faultsim as faultsim;

/// A 3-chunk container over 6100 elements: the balanced plan yields
/// slabs of 2034, 2033, and 2033 elements, so the first slab's shape
/// differs from the last's and an end-swap is geometrically detectable.
/// (Transposing *equal*-shape chunks is outside the integrity contract:
/// chunks carry no positional binding — see DESIGN.md.)
fn sample_container() -> Vec<u8> {
    let data: Vec<f32> = (0..6100).map(|i| (i as f32 * 0.007).cos() * 3.0).collect();
    let c = Compressor::new(Config {
        error_bound: ErrorBound::Absolute(1e-3),
        ..Config::default()
    });
    let arc = c.compress_chunked_with(
        &data,
        Dims::D1(6100),
        2048,
        &cuszp::parallel::WorkerPool::with_default_workers(),
    );
    arc.unwrap().to_bytes()
}

#[test]
fn truncation_at_every_section_boundary_errors_cleanly() {
    let bytes = sample_container();
    let boundaries = faultsim::section_boundaries(&bytes);
    assert!(
        boundaries.len() > 4,
        "expected header/table/chunk boundaries"
    );
    for &b in &boundaries {
        for cut in [b.saturating_sub(1), b, b + 1] {
            if cut >= bytes.len() {
                continue; // not a truncation
            }
            let r = cuszp::decompress(&bytes[..cut]);
            assert!(r.is_err(), "truncated at {cut} (boundary {b}) must fail");
        }
    }
}

#[test]
fn truncation_errors_carry_structured_context() {
    let bytes = sample_container();
    // Cut inside the length table: the fault must name the section.
    let cut = faultsim::CSZ2_HEADER_BYTES + 3;
    match cuszp::decompress(&bytes[..cut]) {
        Err(CuszpError::MalformedArchive(fault)) => {
            assert_eq!(fault.section, cuszp::ArchiveSection::LengthTable);
            assert!(fault.offset <= cut, "offset {} beyond input", fault.offset);
        }
        other => panic!("expected MalformedArchive with context, got {other:?}"),
    }
}

#[test]
fn length_table_bit_flips_are_detected() {
    let bytes = sample_container();
    let layout = faultsim::parse_csz2(&bytes).unwrap();
    for entry in 0..layout.n_chunks {
        for bit in [0u8, 3, 7] {
            let corrupt = faultsim::flip_bit(&bytes, layout.table.start + entry * 8, bit);
            assert!(
                cuszp::decompress(&corrupt).is_err(),
                "flipped bit {bit} of length-table entry {entry} accepted"
            );
            // The resilient path still recovers the chunks the flip did
            // not unframe (at minimum it must not panic and must report
            // the damage if it returns).
            if let Ok(rf) = decompress_resilient(&corrupt, FillPolicy::Nan) {
                assert!(
                    rf.n_damaged() > 0,
                    "entry {entry} bit {bit}: damage unreported"
                );
            }
        }
    }
}

#[test]
fn inflated_chunk_count_fails_without_overallocation() {
    let bytes = sample_container();
    let count_off = faultsim::CSZ2_HEADER_BYTES - 4;
    for value in [u32::MAX, 1 << 30, 1_000_000] {
        let corrupt = faultsim::inflate_u32(&bytes, count_off, value);
        // The declared table alone would be gigabytes; both paths must
        // bounds-check before allocating.
        assert!(
            cuszp::decompress(&corrupt).is_err(),
            "count {value} accepted"
        );
        if let Ok(report) = scan(&corrupt) {
            assert_eq!(report.declared_chunks, value as usize);
            assert!(
                report.reports.len() <= corrupt.len() / 8 + 8,
                "count {value}: report list not bounded by input size"
            );
        }
    }
}

#[test]
fn inflated_length_entry_fails_without_overallocation() {
    let bytes = sample_container();
    let layout = faultsim::parse_csz2(&bytes).unwrap();
    for value in [u64::MAX, u64::MAX / 2, (bytes.len() as u64) * 1000] {
        let corrupt = faultsim::inflate_u64(&bytes, layout.table.start, value);
        assert!(
            cuszp::decompress(&corrupt).is_err(),
            "length {value:#x} accepted"
        );
        // Chunks after the inflated entry are unframed (no resync), so
        // the resilient path reports them rather than guessing.
        if let Ok(rf) = decompress_resilient(&corrupt, FillPolicy::Nan) {
            assert!(rf.n_damaged() > 0, "length {value:#x}: damage unreported");
        }
    }
}

#[test]
fn chunk_surgery_is_rejected_by_the_strict_path() {
    let bytes = sample_container();
    let layout = faultsim::parse_csz2(&bytes).unwrap();
    let last = layout.n_chunks - 1;

    // Swap first and last chunks: slab shapes differ (2034 vs 2033), so
    // the geometry cross-check must catch the transposition.
    let swapped = faultsim::reorder_chunks(&bytes, 0, last).unwrap();
    assert!(
        cuszp::decompress(&swapped).is_err(),
        "chunk reorder accepted"
    );

    // One chunk too many / too few: the chunk count disagrees with the
    // plan computed from the header shape.
    let duped = faultsim::duplicate_chunk(&bytes, 0).unwrap();
    assert!(
        cuszp::decompress(&duped).is_err(),
        "duplicated chunk accepted"
    );
    let deleted = faultsim::delete_chunk(&bytes, last).unwrap();
    assert!(
        cuszp::decompress(&deleted).is_err(),
        "deleted chunk accepted"
    );

    // The resilient path names the out-of-plan chunk on duplication.
    let rf = decompress_resilient(&duped, FillPolicy::Nan);
    if let Ok(rf) = rf {
        assert!(
            rf.reports
                .iter()
                .any(|r| matches!(r.status, ChunkStatus::Malformed(_))),
            "duplicate chunk not reported as malformed"
        );
    }
}

#[test]
fn chunk_body_bit_flips_are_detected_per_chunk() {
    let bytes = sample_container();
    let layout = faultsim::parse_csz2(&bytes).unwrap();
    for (i, chunk) in layout.chunks.iter().enumerate() {
        let mid = chunk.start + chunk.len() / 2;
        let corrupt = faultsim::flip_bit(&bytes, mid, 2);
        assert!(
            cuszp::decompress(&corrupt).is_err(),
            "payload flip in chunk {i} accepted by strict path"
        );
        // The resilient path pinpoints exactly this chunk and recovers
        // the others.
        let rf = decompress_resilient(&corrupt, FillPolicy::Nan).unwrap();
        assert_eq!(rf.n_damaged(), 1, "chunk {i}: wrong damage count");
        let damaged = rf.reports.iter().find(|r| !r.status.is_ok()).unwrap();
        assert_eq!(damaged.index, i, "damage attributed to the wrong chunk");
        let range = damaged.byte_range.clone().unwrap();
        assert!(
            range.contains(&mid),
            "fault range {range:?} misses flip at {mid}"
        );
    }
}

#[test]
fn chunked_magic_with_garbage_tail_errors() {
    let mut garbage = faultsim::CSZ2_MAGIC.to_le_bytes().to_vec();
    garbage.extend((0..10_000u32).map(|i| (i * 37) as u8));
    assert!(cuszp::decompress(&garbage).is_err());
    // scan must also survive it (header parses or it reports an error,
    // but never panics).
    let _ = scan(&garbage);
}
