//! Compression-ratio regression gate for the per-chunk codec plan.
//!
//! The adaptive plan (`PredictorMode::Auto` + `WorkflowMode::Auto` +
//! `LosslessMode::Auto`) exists to beat the historical fixed pipeline
//! (Lorenzo + Huffman, no lossless stage) where the data rewards it,
//! without ever paying meaningfully for data that doesn't. Both halves
//! are pinned here on datagen fields of known character:
//!
//! * **smooth** fields (CESM `PSL`, Miranda `pressure` and `density`)
//!   must compress strictly smaller under the auto plan;
//! * **rough** fields (HACC `vx` particle velocities) must stay within a
//!   small epsilon of the forced pipeline — the probes may not win, but
//!   they must not lose more than their decision margin.

use cuszp::datagen::{dataset_fields, generate, DatasetKind, Field, Scale};
use cuszp::metrics::verify_error_bound;
use cuszp::{
    Compressor, Config, ErrorBound, LosslessMode, Predictor, PredictorMode, WorkflowChoice,
    WorkflowMode,
};

const EB: f64 = 1e-3;

/// Rough fields may lose at most 2% to the adaptive plan: the predictor
/// probe keeps a decision margin and the lossless stage only engages
/// when a trial prefix says it pays.
const ROUGH_EPSILON: f64 = 1.02;

fn field_by_name(kind: DatasetKind, name: &str) -> Field {
    let spec = dataset_fields(kind)
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no field {name} in {}", kind.name()));
    generate(&spec, Scale::Tiny)
}

fn compressed_len(field: &Field, config: Config) -> usize {
    let eb = config.error_bound.absolute(&field.data);
    let archive = Compressor::new(config)
        .compress(&field.data, field.dims)
        .unwrap();
    let bytes = archive.to_bytes();
    let (recon, _) = cuszp::decompress(&bytes).unwrap();
    verify_error_bound(&field.data, &recon, eb)
        .unwrap_or_else(|(i, e)| panic!("{}: bound violated at {i}: {e}", field.name));
    bytes.len()
}

fn auto_plan() -> Config {
    Config {
        error_bound: ErrorBound::Relative(EB),
        predictor: PredictorMode::Auto,
        workflow: WorkflowMode::Auto,
        lossless: LosslessMode::Auto,
        ..Config::default()
    }
}

fn forced_lorenzo_huffman() -> Config {
    Config {
        error_bound: ErrorBound::Relative(EB),
        predictor: PredictorMode::Force(Predictor::Lorenzo),
        workflow: WorkflowMode::Force(WorkflowChoice::Huffman),
        lossless: LosslessMode::Off,
        ..Config::default()
    }
}

#[test]
fn auto_plan_beats_forced_pipeline_on_smooth_fields() {
    for (kind, name) in [
        (DatasetKind::CesmAtm, "PSL"),
        (DatasetKind::Miranda, "pressure"),
        (DatasetKind::Miranda, "density"),
    ] {
        let field = field_by_name(kind, name);
        let auto = compressed_len(&field, auto_plan());
        let forced = compressed_len(&field, forced_lorenzo_huffman());
        assert!(
            auto < forced,
            "{}/{name}: auto plan {auto} B must beat forced lorenzo+huffman {forced} B",
            kind.name()
        );
    }
}

#[test]
fn auto_plan_stays_within_epsilon_on_rough_fields() {
    for (kind, name) in [(DatasetKind::Hacc, "vx"), (DatasetKind::Hacc, "x")] {
        let field = field_by_name(kind, name);
        let auto = compressed_len(&field, auto_plan());
        let forced = compressed_len(&field, forced_lorenzo_huffman());
        assert!(
            (auto as f64) <= forced as f64 * ROUGH_EPSILON,
            "{}/{name}: auto plan {auto} B loses more than {:.0}% to forced {forced} B",
            kind.name(),
            (ROUGH_EPSILON - 1.0) * 100.0
        );
    }
}
