//! The paper's load-bearing qualitative claims, asserted as tests.
//! Each test names the section/table of the claim it checks.

use cuszp::analysis::{analyze, WorkflowChoice};
use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::gpusim::cost::{modeled_throughput, KernelClass, KernelEstimate};
use cuszp::gpusim::{A100, V100};
use cuszp::huffman::stats;
use cuszp::predictor::{construct, DEFAULT_CAP};
use cuszp::{Compressor, Config, ErrorBound, WorkflowMode};

/// §IV-B / Table VI: the fine-grained partial-sum reconstruction is
/// equivalent to (not merely close to) the sequential Lorenzo
/// reconstruction — checked bitwise elsewhere; here: the modeled speedup
/// on V100 for 1-D reaches the paper's order (18.64×).
#[test]
fn claim_headline_reconstruction_speedup() {
    let est = KernelEstimate {
        n_elems: 280_953_867,
        rank: 1,
        outlier_fraction: 0.1,
    };
    let fine = modeled_throughput(KernelClass::LorenzoReconstruct, &V100, &est);
    let coarse = modeled_throughput(KernelClass::LorenzoReconstructCoarse, &V100, &est);
    assert!(
        fine / coarse > 14.0,
        "1-D reconstruction speedup {:.1}x below the paper's regime",
        fine / coarse
    );
}

/// §I conclusion: cuSZ+ benefits more from memory bandwidth than FLOPS —
/// every memory-bound kernel must scale V100→A100 by more than any
/// Huffman stage does.
#[test]
fn claim_bandwidth_over_flops() {
    let est = KernelEstimate {
        n_elems: 134_217_728,
        rank: 3,
        outlier_fraction: 0.01,
    };
    let scale = |k| modeled_throughput(k, &A100, &est) / modeled_throughput(k, &V100, &est);
    let mem_kernels = [
        KernelClass::LorenzoConstruct,
        KernelClass::Histogram,
        KernelClass::ScatterOutlier,
        KernelClass::LorenzoReconstruct,
    ];
    let huffman_kernels = [KernelClass::HuffmanEncode, KernelClass::HuffmanDecode];
    let min_mem = mem_kernels
        .iter()
        .map(|&k| scale(k))
        .fold(f64::INFINITY, f64::min);
    let max_huff = huffman_kernels
        .iter()
        .map(|&k| scale(k))
        .fold(0.0, f64::max);
    assert!(
        min_mem > max_huff,
        "memory-bound kernels ({min_mem:.2}x) must outscale Huffman ({max_huff:.2}x)"
    );
}

/// §III-B / Table IV: at rel eb 1e-2, the RLE+VLE workflow must beat
/// plain VLE on the smooth CESM field classes (zonal, sparse-plume,
/// mask) by a factor comparable to the paper's gains (1.2×–5.3×).
#[test]
fn claim_rle_vle_beats_vle_on_smooth_cesm_fields() {
    let smooth_fields = ["SOLIN", "ODV_dust1", "LANDFRAC"];
    for name in smooth_fields {
        let spec = dataset_fields(DatasetKind::CesmAtm)
            .into_iter()
            .find(|s| s.name == name)
            .unwrap();
        let field = generate(&spec, Scale::Tiny);
        let measure = |wf| {
            let c = Compressor::new(Config {
                error_bound: ErrorBound::Relative(1e-2),
                workflow: WorkflowMode::Force(wf),
                ..Config::default()
            });
            let (_, s) = c.compress_with_stats(&field.data, field.dims).unwrap();
            s.compression_ratio()
        };
        let vle = measure(WorkflowChoice::Huffman);
        let rv = measure(WorkflowChoice::RleVle);
        assert!(
            rv > vle * 1.2,
            "{name}: RLE+VLE {rv:.1} should beat VLE {vle:.1} by >=1.2x"
        );
    }
}

/// §III-A: Huffman-only coding caps the f32 compression ratio at 32×
/// (+ metadata); the RLE path must be able to exceed it.
#[test]
fn claim_rle_breaks_the_32x_huffman_cap() {
    let spec = dataset_fields(DatasetKind::CesmAtm)
        .into_iter()
        .find(|s| s.name == "ODV_dust1")
        .unwrap();
    let field = generate(&spec, Scale::Tiny);
    let measure = |wf| {
        let c = Compressor::new(Config {
            error_bound: ErrorBound::Relative(1e-2),
            workflow: WorkflowMode::Force(wf),
            ..Config::default()
        });
        let (_, s) = c.compress_with_stats(&field.data, field.dims).unwrap();
        s.compression_ratio()
    };
    assert!(measure(WorkflowChoice::Huffman) <= 32.0 + 1.0);
    assert!(measure(WorkflowChoice::RleVle) > 32.0);
}

/// §III-B.1: the redundancy bounds bracket the true Huffman cost on real
/// quant-code histograms (not just synthetic ones).
#[test]
fn claim_redundancy_bounds_hold_on_real_quant_codes() {
    for kind in [DatasetKind::CesmAtm, DatasetKind::Nyx, DatasetKind::Rtm] {
        let spec = dataset_fields(kind)[0];
        let field = generate(&spec, Scale::Tiny);
        let range = {
            let lo = field.data.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = field.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            (hi - lo) as f64
        };
        let qf = construct(&field.data, field.dims, 1e-2 * range, DEFAULT_CAP);
        let hist = cuszp::huffman::histogram(&qf.codes, qf.cap() as usize);
        let book = cuszp::huffman::build_codebook(&hist);
        let b = stats::avg_bit_length(&hist, &book);
        let (lo, hi) = stats::avg_bit_length_bounds(&hist);
        assert!(
            b >= lo - 1e-9 && b <= hi + 1e-9,
            "{}: bracket [{lo:.3}, {hi:.3}] misses true <b>={b:.3}",
            spec.name
        );
    }
}

/// §III-B.2 / Fig. 2a: Lorenzo quant-codes are much smoother (lower
/// madogram) than the prequantized values on trending fields.
#[test]
fn claim_quant_codes_are_smoother_than_values() {
    let spec = dataset_fields(DatasetKind::CesmAtm)
        .into_iter()
        .find(|s| s.name == "PSL")
        .unwrap();
    let field = generate(&spec, Scale::Tiny);
    let range = {
        let lo = field.data.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = field.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        (hi - lo) as f64
    };
    let eb = 1e-2 * range;
    let prequant = cuszp::predictor::prequantize(&field.data, eb);
    let qf = construct(&field.data, field.dims, eb, DEFAULT_CAP);
    let deltas = cuszp::predictor::fuse_codes_and_outliers(&qf);
    let m_pre = cuszp::analysis::madogram(&prequant, 100_000, 200, 1).mean();
    let m_q = cuszp::analysis::madogram(&deltas, 100_000, 200, 1).mean();
    assert!(
        m_q * 3.0 < m_pre,
        "quant-code madogram {m_q:.3} not clearly below prequant {m_pre:.3}"
    );
}

/// §III-B: the selector chooses RLE exactly in the smooth regime, on the
/// actual dataset analogs (not synthetic streams).
#[test]
fn claim_selector_separates_field_classes() {
    let cases = [
        ("SOLIN", true),     // zonal: must take RLE
        ("ODV_bcar1", true), // sparse plumes: must take RLE
        ("TSMX", false),     // dynamic smooth: must keep Huffman
        ("PHIS", false),
    ];
    for (name, expect_rle) in cases {
        let spec = dataset_fields(DatasetKind::CesmAtm)
            .into_iter()
            .find(|s| s.name == name)
            .unwrap();
        let field = generate(&spec, Scale::Tiny);
        let range = {
            let lo = field.data.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = field.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            (hi - lo) as f64
        };
        let qf = construct(&field.data, field.dims, 1e-2 * range, DEFAULT_CAP);
        let report = analyze(&qf.codes, qf.cap());
        let got_rle = report.choice != WorkflowChoice::Huffman;
        assert_eq!(
            got_rle,
            expect_rle,
            "{name}: selector chose {} (p1={:.4}, b_lo={:.3})",
            report.choice.name(),
            report.p1,
            report.b_lower
        );
    }
}
