//! Double-precision (f64) pipeline tests — the paper's "64× for double"
//! path (Miranda is natively double; the paper converts it to float only
//! because original cuSZ lacked double support).

use cuszp::analysis::WorkflowChoice;
use cuszp::{Compressor, Config, Dims, Dtype, ErrorBound, ReconstructEngine, WorkflowMode};

fn field_f64(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.0031).sin() * 7.0 + (i as f64 * 0.0007).cos() * 2.0)
        .collect()
}

#[test]
fn f64_round_trip_all_ranks_and_engines() {
    let data = field_f64(6000);
    let cases = [
        (Dims::D1(6000), &data[..6000]),
        (Dims::D2 { ny: 60, nx: 100 }, &data[..6000]),
        (
            Dims::D3 {
                nz: 10,
                ny: 20,
                nx: 30,
            },
            &data[..6000],
        ),
    ];
    for (dims, slice) in cases {
        let config = Config {
            error_bound: ErrorBound::Absolute(1e-6), // beyond f32 precision
            ..Config::default()
        };
        let archive = Compressor::new(config).compress_f64(slice, dims).unwrap();
        assert_eq!(archive.dtype, Dtype::F64);
        let bytes = archive.to_bytes();
        for engine in ReconstructEngine::ALL {
            let (recon, got_dims) = cuszp::decompress_f64_with_engine(&bytes, engine).unwrap();
            assert_eq!(got_dims, dims);
            for (o, r) in slice.iter().zip(&recon) {
                assert!(
                    (o - r).abs() <= 1e-6 * (1.0 + 1e-9),
                    "f64 bound violated: {o} vs {r} ({})",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn f64_bound_below_f32_precision_is_honored() {
    // A bound of 1e-9 on O(1) values is unreachable in f32 (ULP ≈ 1e-7)
    // but must hold exactly in the f64 pipeline.
    let data = field_f64(4096);
    let config = Config {
        error_bound: ErrorBound::Absolute(1e-9),
        ..Config::default()
    };
    let archive = Compressor::new(config)
        .compress_f64(&data, Dims::D1(4096))
        .unwrap();
    let (recon, _) = cuszp::decompress_f64(&archive.to_bytes()).unwrap();
    for (o, r) in data.iter().zip(&recon) {
        assert!((o - r).abs() <= 1e-9 * (1.0 + 1e-9), "{o} vs {r}");
    }
}

#[test]
fn f64_smooth_data_exceeds_the_32x_float_cap() {
    // The Huffman bit-rate floor is 1 bit/element regardless of width,
    // so doubles can reach ~64× where floats cap at ~32×.
    let data = vec![1.0f64; 1 << 20];
    let config = Config {
        error_bound: ErrorBound::Absolute(1e-3),
        workflow: WorkflowMode::Force(WorkflowChoice::Huffman),
        ..Config::default()
    };
    let (_, stats) = Compressor::new(config)
        .compress_f64_with_stats(&data, Dims::D1(1 << 20))
        .unwrap();
    assert!(
        stats.compression_ratio() > 32.0,
        "double-precision Huffman CR should exceed the float cap: {}",
        stats.compression_ratio()
    );
    assert!(stats.compression_ratio() <= 70.0, "but stay near 64x");
}

#[test]
fn dtype_mismatch_is_a_clean_error() {
    let data = field_f64(1000);
    let archive = Compressor::default()
        .compress_f64(&data, Dims::D1(1000))
        .unwrap();
    let bytes = archive.to_bytes();
    // f32 entry point on an f64 archive:
    let err = cuszp::decompress(&bytes).unwrap_err();
    assert!(
        matches!(err, cuszp::CuszpError::DtypeMismatch { .. }),
        "{err}"
    );
    // And the reverse:
    let f32_archive = Compressor::default()
        .compress(&[1.0f32; 100], Dims::D1(100))
        .unwrap()
        .to_bytes();
    let err = cuszp::decompress_f64(&f32_archive).unwrap_err();
    assert!(
        matches!(err, cuszp::CuszpError::DtypeMismatch { .. }),
        "{err}"
    );
}

#[test]
fn f64_stats_account_eight_byte_elements() {
    let data = field_f64(10_000);
    let (_, stats) = Compressor::default()
        .compress_f64_with_stats(&data, Dims::D1(10_000))
        .unwrap();
    assert_eq!(stats.original_bytes, 80_000);
}
