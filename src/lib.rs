//! # cuszp — a Rust reproduction of cuSZ+ (IEEE CLUSTER 2021)
//!
//! Compressibility-aware error-bounded lossy compression for scientific
//! floating-point data, after *"Optimizing Error-Bounded Lossy Compression
//! for Scientific Data on GPUs"* (Tian, Di, Yu, Rivera, Zhao, Jin, Feng,
//! Liang, Tao, Cappello — CLUSTER 2021).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `cuszp-core` | [`Compressor`], [`Config`], archive format |
//! | [`predictor`] | `cuszp-predictor` | dual-quant, Lorenzo, partial-sum engines |
//! | [`huffman`] | `cuszp-huffman` | multi-byte canonical Huffman |
//! | [`rle`] | `cuszp-rle` | run-length encoding (+ optional VLE) |
//! | [`analysis`] | `cuszp-analysis` | madogram smoothness, workflow selector |
//! | [`lossless`] | `cuszp-lossless` | DEFLATE-style gzip stand-in |
//! | [`zfp`] | `cuszp-zfp` | fixed-rate transform baseline (cuZFP analog) |
//! | [`gpusim`] | `cuszp-gpusim` | SIMT simulator + V100/A100 cost model |
//! | [`datagen`] | `cuszp-datagen` | synthetic SDRBench-style datasets |
//! | [`metrics`] | `cuszp-metrics` | PSNR/NRMSE, bound checks, throughput |
//! | [`parallel`] | `cuszp-parallel` | the data-parallel executor |
//! | [`server`] | `cuszp-server` | CSRP wire protocol, TCP service, client |
//! | [`store`] | `cuszp-store` | log-structured durable shard store |
//!
//! ## Quickstart
//!
//! ```
//! use cuszp::{Compressor, Config, ErrorBound, Dims};
//!
//! let field: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.002).sin()).collect();
//! let compressor = Compressor::new(Config {
//!     error_bound: ErrorBound::Relative(1e-3),
//!     ..Config::default()
//! });
//! let (archive, stats) = compressor
//!     .compress_with_stats(&field, Dims::D1(10_000))
//!     .unwrap();
//! println!("{stats}");
//!
//! let (recon, _) = cuszp::decompress(&archive.to_bytes()).unwrap();
//! let range = 2.0_f64; // sin spans [-1, 1]
//! for (o, r) in field.iter().zip(&recon) {
//!     assert!(((o - r).abs() as f64) <= 1e-3 * range * 1.001);
//! }
//! ```

pub use cuszp_analysis as analysis;
pub use cuszp_core as core;
pub use cuszp_datagen as datagen;
pub use cuszp_faultsim as faultsim;
pub use cuszp_gpusim as gpusim;
pub use cuszp_huffman as huffman;
pub use cuszp_lossless as lossless;
pub use cuszp_metrics as metrics;
pub use cuszp_parallel as parallel;
pub use cuszp_predictor as predictor;
pub use cuszp_rle as rle;
pub use cuszp_server as server;
pub use cuszp_store as store;
pub use cuszp_zfp as zfp;

// The everyday API, flattened.
pub use cuszp_core::{
    decompress, decompress_archive, decompress_f64, decompress_f64_with_engine, decompress_range,
    decompress_range_f64, decompress_range_resilient, decompress_range_resilient_f64,
    decompress_resilient, decompress_resilient_f64, decompress_resilient_f64_with,
    decompress_resilient_with, decompress_with_engine, is_chunked_archive, json_escape, repair,
    repair_with, scan, scan_with, Archive, ArchiveSection, ChunkReport, ChunkStatus,
    ChunkedArchive, CodecPlan, CompressionStats, Compressor, Config, CuszpError, Dims, Dtype,
    ErrorBound, FillPolicy, LosslessMode, LosslessStage, ParityConfig, ParityReport, ParitySection,
    ParseFault, PortableChunkReport, PortableChunkStatus, PortableParityReport, PortableScanReport,
    PortableStripeStatus, Predictor, PredictorMode, RangeSpec, ReconstructEngine, RecoveredField,
    RepairOutcome, ScanReport, Snapshot, SnapshotEntry, StripeStatus, WorkflowChoice, WorkflowMode,
};
