//! `cuszp` — command-line front-end for the compressor.
//!
//! ```text
//! cuszp compress   -i field.f32 -o field.csz -d 512x512x512 [-e 1e-3] [-m abs|rel]
//!                  [-w auto|huffman|rle|rle+vle] [--double]
//! cuszp decompress -i field.csz -o recon.f32
//! cuszp info       -i field.csz
//! cuszp analyze    -i field.f32 -d 1800x3600 [-e 1e-2] [-m rel]
//! cuszp gen        -o field.f32 --dataset cesm --field FSDSC [--scale small]
//! cuszp serve      [-a 127.0.0.1:7117] [--workers 2] [--queue 16]
//! cuszp remote <compress|decompress|scan|info|stats|ping|shutdown> -s <addr> ...
//! ```
//!
//! Input/output rasters are raw little-endian `f32` (or `f64` with
//! `--double`), SDRBench's convention: dimensions travel out-of-band via
//! `-d`, fastest axis last.

use cuszp::analysis::analyze;
use cuszp::datagen::{dataset_fields, generate, DatasetKind, Scale};
use cuszp::faultsim::{ChaosPolicy, ChaosProxy};
use cuszp::metrics::{verify_error_bound, verify_error_bound_f64};
use cuszp::parallel::WorkerPool;
use cuszp::server::{
    ClusterClient, ClusterConfig, CompressRequest, ConnectOptions, DecompressMode, RetryPolicy,
    RetryingClient, Ring, Server, ServerConfig, StoreBackendConfig,
};
use cuszp::store::{FsyncPolicy, StoreConfig};
use cuszp::{
    json_escape, Archive, ChunkStatus, ChunkedArchive, Compressor, Config, CuszpError, Dims, Dtype,
    ErrorBound, FillPolicy, LosslessMode, ParityConfig, PortableScanReport, Predictor,
    PredictorMode, RangeSpec, RecoveredField, ScanReport, WorkflowChoice, WorkflowMode,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // `remote` and `cluster` take a positional sub-operation
    // (`cuszp remote scan ...`, `cuszp cluster put ...`); split it off
    // before option parsing. `cluster-scrub` is an alias for
    // `cluster scrub`, the anti-entropy repair pass.
    let mut remote_op: Option<&str> = None;
    let mut cluster_op: Option<&str> = None;
    let mut rest = rest;
    if cmd == "remote" || cmd == "cluster" {
        let Some((sub, sub_rest)) = rest.split_first() else {
            eprintln!("error: {cmd} needs an operation\n\n{USAGE}");
            return ExitCode::from(2);
        };
        if cmd == "remote" {
            remote_op = Some(sub.as_str());
        } else {
            cluster_op = Some(sub.as_str());
        }
        rest = sub_rest;
    }
    if cmd == "cluster-scrub" {
        cluster_op = Some("scrub");
    }
    // `fsck` (and `remote scan`/`remote info`) take their archive as a
    // positional argument; normalize to `-i` so option parsing stays
    // uniform.
    let takes_positional_archive = cmd == "fsck"
        || cmd == "store-fsck"
        || matches!(
            remote_op,
            Some("scan" | "info" | "decompress" | "get-range")
        );
    // Cluster data ops take their key positionally; normalize to `-k`.
    let takes_positional_key = matches!(cluster_op, Some("put" | "get" | "get-range"));
    let norm_rest: Vec<String>;
    let rest = if (takes_positional_archive || takes_positional_key)
        && rest.first().is_some_and(|a| !a.starts_with('-'))
    {
        let opt = if takes_positional_key { "-k" } else { "-i" };
        norm_rest = [opt.to_string(), rest[0].clone()]
            .into_iter()
            .chain(rest[1..].iter().cloned())
            .collect();
        &norm_rest[..]
    } else {
        rest
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "compress" => cmd_compress(&opts).map(|()| ExitCode::SUCCESS),
        "decompress" => cmd_decompress(&opts).map(|()| ExitCode::SUCCESS),
        "extract" => cmd_extract(&opts).map(|()| ExitCode::SUCCESS),
        "info" => cmd_info(&opts).map(|()| ExitCode::SUCCESS),
        // fsck picks its own exit code: 0 clean, 1 damaged-but-repaired
        // (or repairable), 2 data loss.
        "fsck" => cmd_fsck(&opts),
        // store-fsck shares the taxonomy: 0 clean, 1 repairable via
        // cluster-scrub, 2 directory unreadable.
        "store-fsck" => cmd_store_fsck(&opts),
        "analyze" => cmd_analyze(&opts).map(|()| ExitCode::SUCCESS),
        "gen" => cmd_gen(&opts).map(|()| ExitCode::SUCCESS),
        "serve" => cmd_serve(&opts).map(|()| ExitCode::SUCCESS),
        "chaos-proxy" => cmd_chaos_proxy(&opts).map(|()| ExitCode::SUCCESS),
        // `remote scan` mirrors fsck's exit-code contract.
        "remote" => cmd_remote(remote_op.unwrap(), &opts),
        "cluster" | "cluster-scrub" => cmd_cluster(cluster_op.unwrap(), &opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
cuszp — error-bounded lossy compression for scientific data (cuSZ+ reproduction)

USAGE:
  cuszp compress   -i <raw> -o <archive> -d <dims> [-e <bound>] [-m abs|rel]
                   [-w auto|huffman|rle|rle+vle] [-p lorenzo|interp] [--double]
                   [--threads <n>] [--stats] [--parity <m/k>]
  cuszp decompress -i <archive> -o <raw> [--verify <original raw>] [--threads <n>]
                   [--recover [--fill nan|zero]]
  cuszp extract    -i <archive> -o <raw> --range <spec>
                   [--recover [--fill nan|zero]]
  cuszp info       -i <archive>
  cuszp fsck       <archive> [--repair] [--json]
  cuszp analyze    -i <raw> -d <dims> [-e <bound>] [-m abs|rel] [--double]
  cuszp gen        -o <raw> --dataset <name> --field <name> [--scale tiny|small]
  cuszp serve      [-a <addr>] [--workers <n>] [--queue <n>] [--cache-bytes <n>]
                   [--node-id <id> --ring <id=addr,...> [--ring-epoch <n>]
                    [--ring-parity <m/k>] [--data-dir <path>]
                    [--fsync always|never|<bytes>] [--compact-at <bytes>]]
  cuszp store-fsck <data-dir> [--json]
  cuszp cluster put       <key> -i <archive> --seeds <addr,addr,...>
  cuszp cluster get       <key> -o <archive> --seeds <addr,addr,...>
  cuszp cluster get-range <key> -o <raw> --range <spec> [--double]
                          --seeds <addr,addr,...>
  cuszp cluster ring|scrub --seeds <addr,addr,...>
  cuszp cluster-scrub      --seeds <addr,addr,...>   (alias of cluster scrub)
  cuszp remote compress   -s <addr> -i <raw> -o <archive> -d <dims> [-e] [-m]
                          [-w] [-p] [--double] [--parity <m/k>] [--chunk <elems>]
  cuszp remote decompress <archive> -o <raw> [-s <addr>]
                          [--recover [--fill nan|zero]]
  cuszp remote get-range  <archive> -o <raw> --range <spec> [-s <addr>]
                          [--recover [--fill nan|zero]]
  cuszp remote scan       <archive> [-s <addr>] [--json]
  cuszp remote info       <archive> [-s <addr>]
  cuszp remote stats|ping|health|shutdown -s <addr>
  cuszp chaos-proxy --upstream <addr> [-a <addr>] [--seed <n>]
                    [--profile clean|mixed] [--refuse <pm>] [--cut-request <pm>]
                    [--cut-response <pm>] [--flip <pm>] [--stall <pm>]
                    [--chop <pm>] [--chop-piece <bytes>] [--redraw-bytes <n>]
                    [--kill-after-bytes <n>]

OPTIONS:
  -d  dimensions, fastest axis last: '268435456', '1800x3600', '512x512x512'
  -e  error bound (default 1e-4)
  -m  bound mode: 'rel' (relative to value range, default) or 'abs'
  -w  workflow (default auto = the compressibility-aware selector)
  -p  predictor: 'lorenzo' (default), 'interp' (multi-level cubic), or
      'auto' (score both per chunk and record the choice in the plan)
  --lossless  allow the post-coding bitshuffle+LZ77 stage where a sampled
              probe says it pays (recorded per chunk in the plan)
  --double   treat the raw file as f64
  --threads  chunk-parallel engine with an n-worker pool; compress writes the
             multi-chunk (v2) archive, whose bytes are identical for any n
  --stats    with --threads: aggregate per-chunk compression stats (workflow
             mix, bit rate, outliers) on stderr
  --parity   append Reed-Solomon parity stripes (m parity per k data shards,
             RAID-style '2/8'); any <= m damaged shards per stripe later
             repair bit-exactly. Implies the chunked (v2) container.
  --recover  fault-isolated decompression of a damaged chunked archive:
             shards covered by parity are repaired first, then undamaged
             chunks reconstruct exactly and lost slabs are filled
             (--fill nan|zero, default nan) and reported per chunk
  --range    sub-volume to extract, one 'start:end' (half-open, element
             coordinates of the logical field) per axis, fastest axis last:
             '1000:5000', '10:20x0:3600', '2:6x100:200x0:512'. The written
             raster holds exactly the requested sub-volume, row-major.
  --cache-bytes  serve only: byte budget for the hot-slab range cache
             (default 64 MiB; 0 disables). Repeated `remote get-range`
             reads of the same chunks skip the decoder entirely.
  --retries  remote <op> only: retry transport failures up to <n> extra
             attempts with seeded decorrelated-jitter backoff, reconnecting
             as needed. Only idempotent ops retry (shutdown never does);
             server `retry_after` hints raise the next backoff.
  --deadline-ms      remote <op> only: overall wall-clock budget per call,
             covering every attempt, reconnect, and backoff sleep
             (default 30000)
  --connect-timeout-ms  remote <op> only: TCP connect timeout per attempt
             (default 5000)
  --dataset  one of: hacc cesm hurricane nyx rtm miranda qmcpack

`fsck` validates and decodes every chunk independently (healing damaged
shards from parity when possible), prints a per-chunk report (--json for a
machine-readable one), and exits 0 when clean, 1 when damage exists but
parity covers all of it (with --repair: heals the file in place, atomically),
and 2 on data loss.

`serve` runs the compression service (CSRP framed protocol over TCP; -a
defaults to 127.0.0.1:7117, port 0 picks an ephemeral port). Each worker owns
a reusable pipeline engine; a full queue answers clients with a typed `busy`
error. `remote <op>` talks to a server (-s defaults to 127.0.0.1:7117):
compression runs server-side through the same chunked pipeline, so the
archive bytes match a local `cuszp compress --threads` exactly. `remote scan`
mirrors fsck's report and exit codes; `remote stats` prints live service
metrics (per-op counts, bytes, latency percentiles, cache hit rates).

`extract` decodes only the chunks a `--range` touches — a 3-slab slice of a
terabyte field never decompresses the whole field. `remote get-range` is the
served form: hot chunks come from the server's slab cache, and `--recover`
reads around damage, reporting exactly the damaged in-range chunks.

`serve --node-id N --ring <id=addr,...>` joins a fault-tolerant cluster:
every archive key is split into k data + m parity shards (--ring-parity,
default 1/2) and placed on distinct members by rendezvous hashing. The
`cluster` ops route shard traffic with failover: while at most m placement
nodes are down, `cluster get`/`get-range` still return bit-identical bytes,
reconstructing missing shards from parity. Stale clients are answered with
typed redirect errors carrying the current epoch and owner. `cluster-scrub`
is the anti-entropy pass: it lists every reachable member's verified shards
and re-replicates anything missing or dropped as corrupt (exit 0 fully
healthy, 1 when lost stripes or unreachable members remain).

`serve --data-dir <path>` makes a cluster node durable: shards are appended
to checksummed log segments (`seg-<n>.czl`) under <path>, the index is
rebuilt by scanning them at boot (torn tails truncated, corrupt records
skipped and reported), and overwritten/deleted slots are reclaimed by
size-triggered compaction (--compact-at, default 256 MiB) behind an atomic
manifest swap. --fsync picks the durability contract: `always` (default —
an acknowledged put survives kill -9), a byte interval, or `never`.
A durable node restarted with its data dir serves its shards bit-identically
with zero scrub repairs. `store-fsck` scans a data dir offline (read-only,
same scanner as boot recovery) and prints per-record status: exit 0 clean,
1 damage repairable via restart + cluster-scrub, 2 directory unreadable.

`chaos-proxy` relays TCP to --upstream while injecting seeded faults
(connection refusal, mid-frame cuts, bit flips, stalls, chopped writes) —
point `remote <op> --retries` at it to rehearse client resilience. Fault
rates are per-mille per redraw epoch; the same seed replays the same faults.
`remote health` is a cheap liveness probe: exit 0 when serving, 1 when
draining (the reply carries the server's retry-after hint).";

struct Opts(HashMap<String, String>);

impl Opts {
    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option -{key}"))
    }

    fn has_flag(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a.trim_start_matches('-').to_string();
        if !a.starts_with('-') {
            return Err(format!("unexpected positional argument '{a}'"));
        }
        // Boolean flags.
        if matches!(
            key.as_str(),
            "double" | "verify-none" | "recover" | "stats" | "repair" | "json" | "lossless"
        ) {
            map.insert(key, String::new());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("option -{key} needs a value"))?;
        map.insert(key, value.clone());
    }
    Ok(Opts(map))
}

fn parse_dims(spec: &str) -> Result<Dims, String> {
    let parts: Result<Vec<usize>, _> = spec.split(['x', 'X']).map(str::parse).collect();
    let parts = parts.map_err(|e| format!("bad dims '{spec}': {e}"))?;
    match parts.as_slice() {
        [n] => Ok(Dims::D1(*n)),
        [ny, nx] => Ok(Dims::D2 { ny: *ny, nx: *nx }),
        [nz, ny, nx] => Ok(Dims::D3 {
            nz: *nz,
            ny: *ny,
            nx: *nx,
        }),
        _ => Err(format!("dims must have 1-3 axes, got {}", parts.len())),
    }
}

fn parse_config(opts: &Opts) -> Result<Config, String> {
    let eb: f64 = opts
        .get("e")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad error bound: {e}"))?
        .unwrap_or(1e-4);
    let error_bound = match opts.get("m").unwrap_or("rel") {
        "rel" => ErrorBound::Relative(eb),
        "abs" => ErrorBound::Absolute(eb),
        other => return Err(format!("bad mode '{other}' (abs|rel)")),
    };
    let workflow = match opts.get("w").unwrap_or("auto") {
        "auto" => WorkflowMode::Auto,
        "huffman" => WorkflowMode::Force(WorkflowChoice::Huffman),
        "rle" => WorkflowMode::Force(WorkflowChoice::Rle),
        "rle+vle" => WorkflowMode::Force(WorkflowChoice::RleVle),
        other => return Err(format!("bad workflow '{other}'")),
    };
    let predictor = match opts.get("p").unwrap_or("lorenzo") {
        "lorenzo" => PredictorMode::Force(Predictor::Lorenzo),
        "interp" | "interpolation" => PredictorMode::Force(Predictor::Interpolation),
        "auto" => PredictorMode::Auto,
        other => return Err(format!("bad predictor '{other}'")),
    };
    let lossless = if opts.has_flag("lossless") {
        LosslessMode::Auto
    } else {
        LosslessMode::Off
    };
    Ok(Config {
        error_bound,
        workflow,
        predictor,
        lossless,
        ..Config::default()
    })
}

fn read_raw_f32(path: &str) -> Result<Vec<f32>, String> {
    cuszp::datagen::read_f32_raw(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn read_raw_f64(path: &str) -> Result<Vec<f64>, String> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("{path}: {e}"))?;
    if bytes.len() % 8 != 0 {
        return Err(format!("{path}: size not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

fn write_bytes(path: &str, bytes: &[u8]) -> Result<(), String> {
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(bytes))
        .map_err(|e| format!("{path}: {e}"))
}

/// Parses `--threads` into a pool width, if present.
fn parse_threads(opts: &Opts) -> Result<Option<usize>, String> {
    opts.get("threads")
        .map(|s| {
            s.parse::<usize>()
                .map_err(|e| format!("bad --threads '{s}': {e}"))
        })
        .transpose()
}

fn cmd_compress(opts: &Opts) -> Result<(), String> {
    let input = opts.require("i")?;
    let output = opts.require("o")?;
    let dims = parse_dims(opts.require("d")?)?;
    let config = parse_config(opts)?;
    let threads = parse_threads(opts)?;
    let parity = opts
        .get("parity")
        .map(ParityConfig::parse)
        .transpose()
        .map_err(|e| e.to_string())?;
    let compressor = Compressor::new(config);

    let t0 = std::time::Instant::now();
    // Parity stripes live in the chunked (v2) container, so --parity
    // selects it even without --threads.
    let (bytes, original_bytes) = if threads.is_some() || parity.is_some() {
        // Chunk-parallel engine: multi-chunk (v2) archive, byte-identical
        // for any worker count.
        let pool = match threads {
            Some(n) => WorkerPool::new(n),
            None => WorkerPool::with_default_workers(),
        };
        let target = cuszp::parallel::DEFAULT_CHUNK_ELEMS;
        let want_stats = opts.has_flag("stats");
        let report = |arc: &ChunkedArchive| {
            eprintln!(
                "chunked: {} chunks, {} workers{}",
                arc.n_chunks(),
                pool.workers(),
                match &arc.parity {
                    Some(p) => format!(
                        ", parity {}/{} ({} stripes)",
                        p.parity_shards, p.data_shards, p.n_stripes
                    ),
                    None => String::new(),
                }
            );
        };
        if opts.has_flag("double") {
            let data = read_raw_f64(input)?;
            let (mut arc, stats) = compressor
                .compress_chunked_f64_with_stats(&data, dims, target, &pool)
                .map_err(|e| e.to_string())?;
            if let Some(cfg) = parity {
                arc.add_parity(cfg, &pool);
            }
            report(&arc);
            if want_stats {
                eprintln!("{stats}");
            }
            (arc.to_bytes(), data.len() * 8)
        } else {
            let data = read_raw_f32(input)?;
            let (mut arc, stats) = compressor
                .compress_chunked_with_stats(&data, dims, target, &pool)
                .map_err(|e| e.to_string())?;
            if let Some(cfg) = parity {
                arc.add_parity(cfg, &pool);
            }
            report(&arc);
            if want_stats {
                eprintln!("{stats}");
            }
            (arc.to_bytes(), data.len() * 4)
        }
    } else if opts.has_flag("double") {
        let data = read_raw_f64(input)?;
        let (archive, stats) = compressor
            .compress_f64_with_stats(&data, dims)
            .map_err(|e| e.to_string())?;
        eprintln!("{stats}");
        (archive.to_bytes(), stats.original_bytes)
    } else {
        let data = read_raw_f32(input)?;
        let (archive, stats) = compressor
            .compress_with_stats(&data, dims)
            .map_err(|e| e.to_string())?;
        eprintln!("{stats}");
        (archive.to_bytes(), stats.original_bytes)
    };
    write_bytes(output, &bytes)?;
    eprintln!(
        "wrote {} bytes to {output} in {:.2}s ({:.1} MB/s, ratio {:.2}x)",
        bytes.len(),
        t0.elapsed().as_secs_f64(),
        original_bytes as f64 / 1e6 / t0.elapsed().as_secs_f64(),
        original_bytes as f64 / bytes.len().max(1) as f64
    );
    Ok(())
}

fn cmd_decompress(opts: &Opts) -> Result<(), String> {
    let input = opts.require("i")?;
    let output = opts.require("o")?;
    let bytes = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    if let Some(n) = parse_threads(opts)? {
        // Pool width for chunk fan-out (v1 archives reconstruct whole).
        cuszp::parallel::set_workers(n);
    }
    if opts.has_flag("recover") {
        return cmd_decompress_recover(opts, input, output, &bytes);
    }
    let chunked = cuszp::is_chunked_archive(&bytes)
        .then(|| ChunkedArchive::from_bytes(&bytes))
        .transpose()
        .map_err(|e| e.to_string())?;
    let (dtype, eb) = match &chunked {
        Some(arc) => (arc.dtype, arc.eb),
        None => {
            let archive = Archive::from_bytes(&bytes).map_err(|e| e.to_string())?;
            (archive.dtype, archive.eb)
        }
    };
    let t0 = std::time::Instant::now();
    let out_bytes: Vec<u8> = match dtype {
        Dtype::F32 => {
            let (data, _) = cuszp::decompress(&bytes).map_err(|e| e.to_string())?;
            if let Some(orig_path) = opts.get("verify") {
                let orig = read_raw_f32(orig_path)?;
                verify_error_bound(&orig, &data, eb)
                    .map_err(|(i, e)| format!("bound violated at {i}: {e} > {eb}"))?;
                eprintln!("verified against {orig_path}: max|err| <= {eb}");
            }
            data.iter().flat_map(|x| x.to_le_bytes()).collect()
        }
        Dtype::F64 => {
            let (data, _) = cuszp::decompress_f64(&bytes).map_err(|e| e.to_string())?;
            if let Some(orig_path) = opts.get("verify") {
                let orig = read_raw_f64(orig_path)?;
                verify_error_bound_f64(&orig, &data, eb)
                    .map_err(|(i, e)| format!("bound violated at {i}: {e} > {eb}"))?;
                eprintln!("verified against {orig_path}: max|err| <= {eb}");
            }
            data.iter().flat_map(|x| x.to_le_bytes()).collect()
        }
    };
    write_bytes(output, &out_bytes)?;
    eprintln!(
        "wrote {} bytes to {output} in {:.2}s",
        out_bytes.len(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// `extract --range`: decode only the chunks a sub-volume touches and
/// write that sub-volume as a raw row-major raster. The element type is
/// sniffed by attempting `f32` first, same as the recover path.
fn cmd_extract(opts: &Opts) -> Result<(), String> {
    let input = opts.require("i")?;
    let output = opts.require("o")?;
    let spec = RangeSpec::parse(opts.require("range")?).map_err(|e| e.to_string())?;
    let bytes = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let t0 = std::time::Instant::now();
    if opts.has_flag("recover") {
        let fill = FillPolicy::parse(opts.get("fill").unwrap_or("nan"))
            .ok_or_else(|| format!("bad --fill '{}' (nan|zero)", opts.get("fill").unwrap_or("")))?;
        let (out_bytes, dims, reports) =
            match cuszp::decompress_range_resilient(&bytes, &spec, fill) {
                Ok(rf) => {
                    let out: Vec<u8> = rf.data.iter().flat_map(|x| x.to_le_bytes()).collect();
                    (out, rf.dims, rf.reports)
                }
                Err(CuszpError::DtypeMismatch { .. }) => {
                    let rf = cuszp::decompress_range_resilient_f64(&bytes, &spec, fill)
                        .map_err(|e| e.to_string())?;
                    let out: Vec<u8> = rf.data.iter().flat_map(|x| x.to_le_bytes()).collect();
                    (out, rf.dims, rf.reports)
                }
                Err(e) => return Err(format!("{input}: {e}")),
            };
        for r in reports.iter().filter(|r| !r.status.is_recovered()) {
            eprintln!(
                "  chunk {}: {} (elements {}..{})",
                r.index, r.status, r.elem_range.start, r.elem_range.end
            );
        }
        write_bytes(output, &out_bytes)?;
        eprintln!(
            "extracted {spec} -> {output} ({:?}, {} bytes, {}/{} in-range chunks ok) in {:.2}s",
            dims,
            out_bytes.len(),
            reports.iter().filter(|r| r.status.is_recovered()).count(),
            reports.len(),
            t0.elapsed().as_secs_f64()
        );
        return Ok(());
    }
    let (out_bytes, dims): (Vec<u8>, Dims) = match cuszp::decompress_range(&bytes, &spec) {
        Ok((data, dims)) => (data.iter().flat_map(|x| x.to_le_bytes()).collect(), dims),
        Err(CuszpError::DtypeMismatch { .. }) => {
            let (data, dims) =
                cuszp::decompress_range_f64(&bytes, &spec).map_err(|e| e.to_string())?;
            (data.iter().flat_map(|x| x.to_le_bytes()).collect(), dims)
        }
        Err(e) => return Err(format!("{input}: {e}")),
    };
    write_bytes(output, &out_bytes)?;
    eprintln!(
        "extracted {spec} -> {output} ({dims:?}, {} bytes) in {:.2}s",
        out_bytes.len(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// `decompress --recover`: fault-isolated decompression. The strict
/// metadata parse is skipped on purpose — the archive may be damaged —
/// and the element type is discovered by attempting `f32` first (the
/// recovery core rejects a wrong dtype before doing any work).
fn cmd_decompress_recover(
    opts: &Opts,
    input: &str,
    output: &str,
    bytes: &[u8],
) -> Result<(), String> {
    if opts.get("verify").is_some() {
        return Err(
            "--verify cannot be combined with --recover (damaged slabs hold fill values)".into(),
        );
    }
    let fill = FillPolicy::parse(opts.get("fill").unwrap_or("nan"))
        .ok_or_else(|| format!("bad --fill '{}' (nan|zero)", opts.get("fill").unwrap_or("")))?;
    let t0 = std::time::Instant::now();
    let (out_bytes, reports) = match cuszp::decompress_resilient(bytes, fill) {
        Ok(rf) => {
            let RecoveredField { data, reports, .. } = rf;
            let out: Vec<u8> = data.iter().flat_map(|x| x.to_le_bytes()).collect();
            (out, reports)
        }
        Err(CuszpError::DtypeMismatch { .. }) => {
            let rf = cuszp::decompress_resilient_f64(bytes, fill).map_err(|e| e.to_string())?;
            let RecoveredField { data, reports, .. } = rf;
            let out: Vec<u8> = data.iter().flat_map(|x| x.to_le_bytes()).collect();
            (out, reports)
        }
        Err(e) => return Err(format!("{input}: unrecoverable: {e}")),
    };
    let damaged: Vec<_> = reports
        .iter()
        .filter(|r| !r.status.is_recovered())
        .collect();
    let repaired = reports
        .iter()
        .filter(|r| matches!(r.status, ChunkStatus::Repaired { .. }))
        .count();
    for r in &damaged {
        eprintln!(
            "  chunk {}: {} (elements {}..{})",
            r.index, r.status, r.elem_range.start, r.elem_range.end
        );
    }
    write_bytes(output, &out_bytes)?;
    eprintln!(
        "recovered {}/{} chunks to {output} in {:.2}s{}{}",
        reports.len() - damaged.len(),
        reports.len(),
        t0.elapsed().as_secs_f64(),
        if repaired > 0 {
            format!(" ({repaired} chunk(s) healed from parity)")
        } else {
            String::new()
        },
        if damaged.is_empty() {
            String::new()
        } else {
            format!(" ({} damaged slab(s) filled)", damaged.len())
        }
    );
    Ok(())
}

/// `fsck`: validates and decodes every chunk independently (repairing
/// damaged shards from parity first), prints a per-chunk and per-stripe
/// report, and exits 0 (clean), 1 (damage fully covered by parity — with
/// `--repair`, healed in place), or 2 (data loss).
fn cmd_fsck(opts: &Opts) -> Result<ExitCode, String> {
    let input = opts.require("i")?;
    let json = opts.has_flag("json");
    let bytes = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;

    // An unusable container header means nothing is recoverable: that is
    // data loss, not a usage error.
    let scanned = if opts.has_flag("repair") {
        cuszp::repair(&bytes).map(Some)
    } else {
        cuszp::scan(&bytes).map(|r| {
            Some(cuszp::RepairOutcome {
                bytes: Vec::new(),
                report: r,
                modified: false,
            })
        })
    };
    let outcome = match scanned {
        Ok(o) => o.unwrap(),
        Err(e) => {
            if json {
                println!(
                    "{{\"archive\":\"{}\",\"error\":\"{}\",\"exit_code\":2}}",
                    json_escape(input),
                    json_escape(&e.to_string())
                );
            } else {
                eprintln!("error: {input}: {e}");
            }
            return Ok(ExitCode::from(2));
        }
    };
    let report = &outcome.report;
    let mut code = fsck_exit_code(report);
    let rewritten = if opts.has_flag("repair") {
        let do_write = code != 2 && outcome.modified;
        if do_write {
            write_atomic(input, &outcome.bytes)?;
            // The file on disk is whole again.
            code = 0;
        }
        Some(do_write)
    } else {
        None
    };

    if json {
        println!("{}", fsck_json(input, report, code, rewritten));
        return Ok(ExitCode::from(code));
    }

    println!("archive: {input} ({})", report.format);
    if let Some(dims) = report.dims {
        println!("  dims:   {dims:?} ({} elements)", dims.len());
    }
    if let Some(dtype) = report.dtype {
        println!("  dtype:  {}", dtype.name());
    }
    println!("  chunks: {} declared", report.declared_chunks);
    for r in &report.reports {
        let loc = match &r.byte_range {
            Some(range) => format!("bytes {}..{}", range.start, range.end),
            None => "unlocatable".to_string(),
        };
        let plan = r
            .plan
            .map_or(String::new(), |p| format!(", plan {}", p.label()));
        println!(
            "    [{}] {}  ({loc}, elements {}..{}{plan})",
            r.index, r.status, r.elem_range.start, r.elem_range.end
        );
    }
    if let Some(p) = &report.parity {
        println!(
            "  parity: {}/{} (shard {} B, {} stripes): {} repaired, {} unrepairable",
            p.parity_shards,
            p.data_shards,
            p.shard_size,
            p.n_stripes,
            p.n_repaired(),
            p.n_unrepairable()
        );
    }
    match (code, rewritten) {
        (2, _) => println!(
            "  data loss: {} of {} chunk(s) unrecoverable",
            report.n_damaged(),
            report.reports.len()
        ),
        (_, Some(true)) => println!("  repaired: {input} rewritten, archive is whole again"),
        (1, _) => {
            println!("  repairable: damage is covered by parity; run `cuszp fsck {input} --repair`")
        }
        _ => println!(
            "  clean: all {} chunk(s) validated and decoded",
            report.reports.len()
        ),
    }
    Ok(ExitCode::from(code))
}

/// 0 = clean, 1 = damaged but fully covered by parity, 2 = data loss.
fn fsck_exit_code(report: &ScanReport) -> u8 {
    if report.n_damaged() > 0 {
        2
    } else if report.n_repaired() > 0 || report.parity.as_ref().is_some_and(|p| !p.is_intact()) {
        1
    } else {
        0
    }
}

/// Writes via a temp file in the same directory plus rename, so a crash
/// mid-repair never leaves a half-written archive where a good (if
/// damaged) one used to be.
fn write_atomic(path: &str, bytes: &[u8]) -> Result<(), String> {
    let tmp = format!("{path}.repair.{}", std::process::id());
    write_bytes(&tmp, bytes)?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("{path}: {e}")
    })
}

/// The whole fsck report as one JSON object. The report body renders
/// through [`PortableScanReport::to_json_fields`] — the same code path
/// as `remote scan --json` and the wire form, so the formats cannot
/// drift. `repaired_file` is null without `--repair`, else whether the
/// archive was rewritten.
fn fsck_json(input: &str, report: &ScanReport, code: u8, repaired_file: Option<bool>) -> String {
    format!(
        "{{\"archive\":\"{}\",{},\"repaired_file\":{},\"exit_code\":{}}}",
        json_escape(input),
        PortableScanReport::from(report).to_json_fields(),
        repaired_file.map_or("null".to_string(), |b| b.to_string()),
        code
    )
}

fn cmd_info(opts: &Opts) -> Result<(), String> {
    let input = opts.require("i")?;
    let bytes = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    if cuszp::is_chunked_archive(&bytes) {
        let arc = ChunkedArchive::from_bytes(&bytes).map_err(|e| e.to_string())?;
        let n = arc.dims.len();
        println!("archive: {input} (chunked v2)");
        println!("  dtype:        {}", arc.dtype.name());
        println!("  dims:         {:?} ({n} elements)", arc.dims);
        println!("  error bound:  {:.6e} (absolute, global)", arc.eb);
        println!(
            "  chunks:       {} (target {} elems)",
            arc.n_chunks(),
            arc.chunk_target
        );
        for (i, ch) in arc.chunks.iter().enumerate() {
            println!(
                "    [{i}] {:?}  plan {}  {} outliers  {} bytes",
                ch.dims,
                ch.plan().label(),
                ch.outliers.len(),
                ch.serialized_bytes()
            );
        }
        let mix: Vec<String> = [
            WorkflowChoice::Huffman,
            WorkflowChoice::Rle,
            WorkflowChoice::RleVle,
        ]
        .into_iter()
        .filter_map(|c| {
            let count = arc
                .chunks
                .iter()
                .filter(|ch| ch.payload.choice() == c)
                .count();
            (count > 0).then(|| format!("{} x{count}", c.name()))
        })
        .collect();
        println!("  workflow mix: {}", mix.join(", "));
        let plan_mix: Vec<String> = {
            let mut mix: Vec<(String, usize)> = Vec::new();
            for ch in &arc.chunks {
                let label = ch.plan().label();
                match mix.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, n)) => *n += 1,
                    None => mix.push((label, 1)),
                }
            }
            mix.into_iter()
                .map(|(label, n)| format!("{label} x{n}"))
                .collect()
        };
        println!("  plan mix:     {}", plan_mix.join(", "));
        let outliers: usize = arc.chunks.iter().map(|ch| ch.outliers.len()).sum();
        println!(
            "  outliers:     {} ({:.3}%)",
            outliers,
            100.0 * outliers as f64 / n.max(1) as f64
        );
        match &arc.parity {
            Some(p) => {
                let section = p.serialized_bytes();
                println!(
                    "  parity:       {}/{} (shard {} B, {} stripes, {} bytes = {:.2}% overhead)",
                    p.parity_shards,
                    p.data_shards,
                    p.shard_size,
                    p.n_stripes,
                    section,
                    100.0 * section as f64 / bytes.len().max(1) as f64
                );
            }
            None => println!("  parity:       none"),
        }
        println!("  stored size:  {} bytes", bytes.len());
        println!(
            "  ratio:        {:.2}x",
            (n * arc.dtype.bytes()) as f64 / bytes.len().max(1) as f64
        );
        return Ok(());
    }
    let archive = Archive::from_bytes(&bytes).map_err(|e| e.to_string())?;
    let n = archive.dims.len();
    println!("archive: {input}");
    println!("  dtype:        {}", archive.dtype.name());
    println!("  dims:         {:?} ({n} elements)", archive.dims);
    println!("  error bound:  {:.6e} (absolute)", archive.eb);
    println!("  quant cap:    {}", archive.cap);
    println!("  predictor:    {}", archive.predictor.name());
    println!("  workflow:     {}", archive.payload.choice().name());
    println!("  plan:         {}", archive.plan().label());
    println!(
        "  outliers:     {} ({:.3}%)",
        archive.outliers.len(),
        100.0 * archive.outliers.len() as f64 / n.max(1) as f64
    );
    println!("  stored size:  {} bytes", bytes.len());
    println!(
        "  ratio:        {:.2}x",
        (n * archive.dtype.bytes()) as f64 / bytes.len() as f64
    );
    Ok(())
}

fn cmd_analyze(opts: &Opts) -> Result<(), String> {
    let input = opts.require("i")?;
    let dims = parse_dims(opts.require("d")?)?;
    let config = parse_config(opts)?;
    let data = read_raw_f32(input)?;
    if data.len() != dims.len() {
        return Err(format!(
            "{input} has {} elements, dims say {}",
            data.len(),
            dims.len()
        ));
    }
    let eb = config.error_bound.absolute(&data);
    let qf = cuszp::predictor::construct(&data, dims, eb, cuszp::predictor::DEFAULT_CAP);
    let report = analyze(&qf.codes, qf.cap());
    println!("field: {input} {dims:?}, abs eb {eb:.6e}");
    println!("  outliers:      {:.3}%", qf.outlier_fraction() * 100.0);
    println!("  p1:            {:.4}", report.p1);
    println!("  entropy:       {:.3} bits/symbol", report.entropy);
    println!(
        "  <b> bracket:   [{:.3}, {:.3}] bits",
        report.b_lower, report.b_upper
    );
    println!("  roughness(1):  {:.4}", report.roughness);
    println!("  est CR (VLE):  {:.1}x", report.est_cr_huffman);
    println!("  est CR (RLE):  {:.1}x", report.est_cr_rle);
    println!("  recommended:   {}", report.choice.name());
    Ok(())
}

fn cmd_gen(opts: &Opts) -> Result<(), String> {
    let output = opts.require("o")?;
    let dataset = match opts.require("dataset")?.to_ascii_lowercase().as_str() {
        "hacc" => DatasetKind::Hacc,
        "cesm" | "cesm-atm" => DatasetKind::CesmAtm,
        "hurricane" => DatasetKind::Hurricane,
        "nyx" => DatasetKind::Nyx,
        "rtm" => DatasetKind::Rtm,
        "miranda" => DatasetKind::Miranda,
        "qmcpack" => DatasetKind::Qmcpack,
        other => return Err(format!("unknown dataset '{other}'")),
    };
    let field_name = opts.require("field")?;
    let scale = match opts.get("scale").unwrap_or("small") {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        other => return Err(format!("bad scale '{other}'")),
    };
    let spec = dataset_fields(dataset)
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(field_name))
        .ok_or_else(|| {
            let names: Vec<&str> = dataset_fields(dataset).iter().map(|s| s.name).collect();
            format!(
                "no field '{field_name}' in {}; available: {}",
                dataset.name(),
                names.join(", ")
            )
        })?;
    let field = generate(&spec, scale);
    cuszp::datagen::write_f32_raw(Path::new(output), &field.data)
        .map_err(|e| format!("{output}: {e}"))?;
    eprintln!(
        "generated {}/{} {:?} -> {output} ({} bytes); compress with: cuszp compress -i {output} -o {output}.csz -d {}",
        dataset.name(),
        spec.name,
        field.dims,
        field.bytes(),
        dims_spec(field.dims)
    );
    Ok(())
}

fn dims_spec(dims: Dims) -> String {
    match dims {
        Dims::D1(n) => format!("{n}"),
        Dims::D2 { ny, nx } => format!("{ny}x{nx}"),
        Dims::D3 { nz, ny, nx } => format!("{nz}x{ny}x{nx}"),
    }
}

// ---------------------------------------------------------------------
// The compression service: `serve` and `remote <op>`.
/// `store-fsck <data-dir>`: offline, read-only scan of a durable shard
/// store's segment files, sharing the store crate's recovery scanner so
/// it can never disagree with what a node boot would accept. Exit codes
/// follow the fsck taxonomy: 0 clean, 1 damage found but repairable
/// (torn tails truncate at the next boot; dropped shards re-replicate
/// via `cluster-scrub`), 2 the directory itself is unreadable.
fn cmd_store_fsck(opts: &Opts) -> Result<ExitCode, String> {
    let dir = opts
        .get("i")
        .ok_or("store-fsck needs a data directory argument")?;
    let json = opts.has_flag("json");
    let report = match cuszp::store::scan_dir(Path::new(dir)) {
        Ok(r) => r,
        Err(e) => {
            if json {
                println!(
                    "{{\"data_dir\":\"{}\",\"error\":\"{}\",\"exit_code\":2}}",
                    json_escape(dir),
                    json_escape(&e.to_string())
                );
            } else {
                eprintln!("error: {dir}: {e}");
            }
            return Ok(ExitCode::from(2));
        }
    };
    let code = report.exit_code();
    if json {
        let mut out = format!("{{\"data_dir\":\"{}\",\"segments\":[", json_escape(dir));
        for (si, seg) in report.segments.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"bytes\":{},\"records\":[",
                seg.seq, seg.bytes
            ));
            for (ri, r) in seg.records.iter().enumerate() {
                if ri > 0 {
                    out.push(',');
                }
                let status = match &r.status {
                    cuszp::store::RecordStatus::Live => "live",
                    cuszp::store::RecordStatus::Superseded => "superseded",
                    cuszp::store::RecordStatus::Tombstone => "tombstone",
                    cuszp::store::RecordStatus::Damaged(_) => "damaged",
                };
                out.push_str(&format!(
                    "{{\"offset\":{},\"status\":\"{status}\"",
                    r.offset
                ));
                if let Some((key, idx)) = &r.key {
                    out.push_str(&format!(
                        ",\"key\":\"{}\",\"shard_idx\":{idx},\"len\":{}",
                        json_escape(key),
                        r.payload_len
                    ));
                }
                if let cuszp::store::RecordStatus::Damaged(fault) = &r.status {
                    out.push_str(&format!(
                        ",\"detail\":\"{}\"",
                        json_escape(&fault.to_string())
                    ));
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str(&format!(
            "],\"live\":{},\"superseded\":{},\"tombstones\":{},\"damaged\":{},\"exit_code\":{code}}}",
            report.live_shards, report.superseded, report.tombstones, report.damaged
        ));
        println!("{out}");
        return Ok(ExitCode::from(code as u8));
    }
    println!("store: {dir} ({} segment(s))", report.segments.len());
    for fault in &report.dir_faults {
        println!("  DIRECTORY: {fault}");
    }
    for seg in &report.segments {
        println!("  seg-{:08}.czl  {} bytes", seg.seq, seg.bytes);
        for r in &seg.records {
            match &r.key {
                Some((key, idx)) => println!(
                    "    @{:<10} {}  '{key}' shard {idx} ({} bytes)",
                    r.offset, r.status, r.payload_len
                ),
                None => println!("    @{:<10} {}", r.offset, r.status),
            }
        }
    }
    println!(
        "  {} live, {} superseded, {} tombstone(s), {} damaged",
        report.live_shards, report.superseded, report.tombstones, report.damaged
    );
    if code == 0 {
        println!("  clean");
    } else {
        println!(
            "  repairable: a node restart truncates torn tails; `cuszp cluster-scrub` \
             re-replicates dropped shards"
        );
    }
    Ok(ExitCode::from(code as u8))
}

// ---------------------------------------------------------------------

const DEFAULT_ADDR: &str = "127.0.0.1:7117";

/// `serve`: run the compression service until a `remote shutdown` (or a
/// signal kills the process). Prints the bound address on stdout first,
/// so scripts binding port 0 can discover the ephemeral port.
fn cmd_serve(opts: &Opts) -> Result<(), String> {
    let addr = opts
        .get("a")
        .or_else(|| opts.get("addr"))
        .unwrap_or(DEFAULT_ADDR);
    let mut config = ServerConfig::default();
    if let Some(w) = opts.get("workers") {
        config.workers = w.parse().map_err(|e| format!("bad --workers '{w}': {e}"))?;
    }
    if let Some(q) = opts.get("queue") {
        config.queue_capacity = q.parse().map_err(|e| format!("bad --queue '{q}': {e}"))?;
    }
    if let Some(c) = opts.get("cache-bytes") {
        config.cache_bytes = c
            .parse()
            .map_err(|e| format!("bad --cache-bytes '{c}': {e}"))?;
    }
    // Cluster mode: `--node-id` + `--ring` turn this instance into one
    // member of an erasure-coded placement ring (CSRP v3 shard ops).
    if opts.get("data-dir").is_some()
        && (opts.get("node-id").is_none() || opts.get("ring").is_none())
    {
        return Err("--data-dir needs cluster mode (--node-id and --ring)".into());
    }
    let cluster = match (opts.get("node-id"), opts.get("ring")) {
        (None, None) => None,
        (Some(id), Some(ring_spec)) => {
            let node_id: u64 = id
                .parse()
                .map_err(|e| format!("bad --node-id '{id}': {e}"))?;
            let epoch: u64 = match opts.get("ring-epoch") {
                Some(v) => v
                    .parse()
                    .map_err(|e| format!("bad --ring-epoch '{v}': {e}"))?,
                None => 1,
            };
            let (m, k) = match opts.get("ring-parity") {
                Some(v) => {
                    let p =
                        ParityConfig::parse(v).map_err(|e| format!("bad --ring-parity: {e}"))?;
                    (p.parity_shards, p.data_shards)
                }
                None => (1, 2),
            };
            let ring =
                Ring::parse_spec(ring_spec, epoch, k, m).map_err(|e| format!("bad --ring: {e}"))?;
            // Shard persistence: `--data-dir` switches the node from the
            // in-memory store (empty after restart, healed by scrub) to
            // the durable log-structured store.
            let backend = match opts.get("data-dir") {
                Some(dir) => {
                    let mut store_config = StoreConfig::new(dir);
                    if let Some(policy) = opts.get("fsync") {
                        store_config.fsync =
                            FsyncPolicy::parse(policy).map_err(|e| format!("bad --fsync: {e}"))?;
                    }
                    if let Some(bytes) = opts.get("compact-at") {
                        store_config.compact_at = bytes
                            .parse()
                            .map_err(|e| format!("bad --compact-at '{bytes}': {e}"))?;
                    }
                    StoreBackendConfig::Durable(store_config)
                }
                None => {
                    if opts.get("fsync").is_some() || opts.get("compact-at").is_some() {
                        return Err("--fsync / --compact-at need --data-dir (durable store)".into());
                    }
                    StoreBackendConfig::Memory
                }
            };
            Some(ClusterConfig {
                node_id,
                ring,
                backend,
            })
        }
        _ => return Err("cluster mode needs both --node-id and --ring".into()),
    };
    let workers = config.workers;
    let queue_capacity = config.queue_capacity;
    let cluster_banner = cluster.as_ref().map(|c| {
        let store_desc = match &c.backend {
            StoreBackendConfig::Memory => "memory shard store".to_string(),
            StoreBackendConfig::Durable(sc) => format!(
                "durable shard store at {} (fsync {}, compact at {} bytes)",
                sc.dir.display(),
                sc.fsync,
                sc.compact_at
            ),
        };
        format!(
            "node {} of {} (epoch {}, {}+{} shards per stripe), {store_desc}",
            c.node_id,
            c.ring.nodes().len(),
            c.ring.epoch,
            c.ring.data_shards,
            c.ring.parity_shards
        )
    });
    let server = Server::bind_cluster(addr, config, cluster).map_err(|e| format!("{addr}: {e}"))?;
    let recovery_banner = server.handle().store_recovery_summary();
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!("cuszp-server listening on {bound}");
    eprintln!(
        "  {} workers (one pipeline engine each), queue capacity {}; stop with: cuszp remote shutdown -s {bound}",
        workers, queue_capacity
    );
    if let Some(banner) = cluster_banner {
        eprintln!("  cluster: {banner}");
    }
    if let Some(recovery) = recovery_banner {
        eprintln!("  recovery: {recovery}");
    }
    server.serve().map_err(|e| e.to_string())?;
    eprintln!("cuszp-server: drained, bye");
    Ok(())
}

/// `chaos-proxy`: run a seeded fault-injection relay in front of
/// `--upstream` until the process is killed. Prints the bound address on
/// stdout first (same shape as `serve`) so scripts binding port 0 can
/// discover the ephemeral port; injection counters go to stderr
/// periodically.
fn cmd_chaos_proxy(opts: &Opts) -> Result<(), String> {
    let upstream_spec = opts
        .get("u")
        .or_else(|| opts.get("upstream"))
        .ok_or("chaos-proxy needs --upstream <addr>")?;
    let upstream = resolve_addr(upstream_spec)?;
    let listen_spec = opts
        .get("a")
        .or_else(|| opts.get("addr"))
        .unwrap_or("127.0.0.1:0");
    let listen = resolve_addr(listen_spec)?;
    let seed: u64 = opts
        .get("seed")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --seed: {e}"))?
        .unwrap_or(1);
    let mut policy = match opts.get("profile").unwrap_or("clean") {
        "clean" => ChaosPolicy::clean(),
        "mixed" => ChaosPolicy::mixed(),
        other => return Err(format!("bad --profile '{other}' (clean|mixed)")),
    };
    let pm = |key: &str, cur: u32| -> Result<u32, String> {
        match opts.get(key) {
            Some(v) => v.parse().map_err(|e| format!("bad --{key} '{v}': {e}")),
            None => Ok(cur),
        }
    };
    policy.refuse_per_mille = pm("refuse", policy.refuse_per_mille)?;
    policy.cut_request_per_mille = pm("cut-request", policy.cut_request_per_mille)?;
    policy.cut_response_per_mille = pm("cut-response", policy.cut_response_per_mille)?;
    let flip = pm("flip", 0)?;
    if opts.get("flip").is_some() {
        policy.flip_request_per_mille = flip;
        policy.flip_response_per_mille = flip;
    }
    policy.stall_per_mille = pm("stall", policy.stall_per_mille)?;
    if let Some(v) = opts.get("stall-max-ms") {
        policy.stall_max_ms = v
            .parse::<u64>()
            .map_err(|e| format!("bad --stall-max-ms '{v}': {e}"))?
            .max(1);
    }
    policy.chop_per_mille = pm("chop", policy.chop_per_mille)?;
    if let Some(v) = opts.get("chop-piece") {
        policy.chop_piece = v
            .parse::<usize>()
            .map_err(|e| format!("bad --chop-piece '{v}': {e}"))?
            .max(1);
    }
    if let Some(v) = opts.get("redraw-bytes") {
        policy.redraw_bytes = v
            .parse::<usize>()
            .map_err(|e| format!("bad --redraw-bytes '{v}': {e}"))?
            .max(1);
    }
    // Node-death profile: after this many relayed bytes the proxied
    // node dies (in-flight relays sever, later connections refused).
    if let Some(v) = opts.get("kill-after-bytes") {
        policy.kill_after_bytes = v
            .parse::<u64>()
            .map_err(|e| format!("bad --kill-after-bytes '{v}': {e}"))?;
    }
    let proxy =
        ChaosProxy::bind(listen, upstream, policy, seed).map_err(|e| format!("{listen}: {e}"))?;
    println!("chaos-proxy listening on {}", proxy.local_addr());
    eprintln!("  relaying to {upstream}, seed {seed}; stop by killing the process");
    let mut last_report = (0u64, 0u64);
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let s = proxy.stats();
        let now = (
            s.connections.load(std::sync::atomic::Ordering::Relaxed),
            s.faults_fired(),
        );
        if now != last_report {
            last_report = now;
            eprintln!(
                "  chaos: {} connection(s) ({} refused), {} request / {} response cut(s), {} bit flip(s), {} stall(s), {} chopped epoch(s)",
                now.0,
                s.refused.load(std::sync::atomic::Ordering::Relaxed),
                s.requests_cut.load(std::sync::atomic::Ordering::Relaxed),
                s.responses_cut.load(std::sync::atomic::Ordering::Relaxed),
                s.bits_flipped.load(std::sync::atomic::Ordering::Relaxed),
                s.stalls.load(std::sync::atomic::Ordering::Relaxed),
                s.chopped.load(std::sync::atomic::Ordering::Relaxed),
            );
        }
    }
}

fn resolve_addr(spec: &str) -> Result<std::net::SocketAddr, String> {
    use std::net::ToSocketAddrs;
    spec.to_socket_addrs()
        .map_err(|e| format!("{spec}: {e}"))?
        .next()
        .ok_or_else(|| format!("{spec}: resolved to no address"))
}

/// Builds the retrying client every `remote <op>` talks through. Without
/// `--retries` the policy is single-attempt (`RetryPolicy::no_retry`),
/// so failures surface immediately; `--retries N` allows N extra
/// attempts with the default backoff schedule. `--deadline-ms` and
/// `--connect-timeout-ms` bound each call either way.
fn remote_client(opts: &Opts) -> Result<RetryingClient, String> {
    let addr = opts
        .get("s")
        .or_else(|| opts.get("server"))
        .unwrap_or(DEFAULT_ADDR);
    let mut policy = RetryPolicy::no_retry();
    if let Some(r) = opts.get("retries") {
        let extra: u32 = r.parse().map_err(|e| format!("bad --retries '{r}': {e}"))?;
        policy.max_attempts = extra.saturating_add(1);
    }
    if let Some(ms) = opt_ms(opts, "deadline-ms")? {
        policy.deadline = ms;
    }
    if let Some(ms) = opt_ms(opts, "connect-timeout-ms")? {
        policy.connect_timeout = ms;
    }
    if let Some(s) = opts.get("retry-seed") {
        policy.seed = s
            .parse()
            .map_err(|e| format!("bad --retry-seed '{s}': {e}"))?;
    }
    Ok(RetryingClient::new(addr, policy))
}

fn opt_ms(opts: &Opts, key: &str) -> Result<Option<std::time::Duration>, String> {
    opts.get(key)
        .map(|v| {
            v.parse::<u64>()
                .map(std::time::Duration::from_millis)
                .map_err(|e| format!("bad --{key} '{v}': {e}"))
        })
        .transpose()
}

/// After a remote op, surface the client-side resilience counters on
/// stderr — but only when something nontrivial happened, so the clean
/// fast path stays quiet.
fn report_retries(client: &RetryingClient) {
    let s = client.stats();
    let noteworthy = s.retries.get() + s.reconnects.get() + s.hints_honored.get();
    if noteworthy > 0 || s.deadline_exceeded.get() > 0 {
        eprintln!(
            "remote: {} attempt(s) for {} call(s): {} retried, {} reconnect(s), {} backoff hint(s) honored, {} deadline exceeded",
            s.attempts.get(),
            s.calls.get(),
            s.retries.get(),
            s.reconnects.get(),
            s.hints_honored.get(),
            s.deadline_exceeded.get()
        );
    }
}

/// Builds the ring-aware client every `cluster <op>` talks through:
/// `--seeds` (or `-s`) names any live members, the ring is fetched from
/// the first that answers, and every shard op routes by rendezvous
/// placement with failover to survivors.
fn cluster_client(opts: &Opts) -> Result<ClusterClient, String> {
    let spec = opts
        .get("seeds")
        .or_else(|| opts.get("s"))
        .ok_or("cluster ops need --seeds <addr,addr,...> (any live members)")?;
    let seeds: Vec<String> = spec
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if seeds.is_empty() {
        return Err("--seeds named no addresses".into());
    }
    let mut conn = ConnectOptions::default();
    if let Some(ms) = opt_ms(opts, "connect-timeout-ms")? {
        conn.connect_timeout = ms;
    }
    ClusterClient::connect_any(&seeds, conn).map_err(|e| e.to_string())
}

/// After a cluster op, surface the client-side routing counters on
/// stderr when anything nontrivial happened (mirrors `report_retries`).
fn report_cluster(client: &ClusterClient) {
    let s = client.stats();
    let noteworthy = s.degraded_reads.get()
        + s.redirects_followed.get()
        + s.shard_failures.get()
        + s.scrub_repairs.get();
    if noteworthy > 0 {
        eprintln!(
            "cluster: {} degraded read(s), {} redirect(s) followed, {} ring refresh(es), {} shard failure(s), {} scrub repair(s)",
            s.degraded_reads.get(),
            s.redirects_followed.get(),
            s.ring_refreshes.get(),
            s.shard_failures.get(),
            s.scrub_repairs.get()
        );
    }
}

fn cmd_cluster(sub: &str, opts: &Opts) -> Result<ExitCode, String> {
    match sub {
        "put" => {
            let key = opts.require("k")?;
            let input = opts.require("i")?;
            let bytes = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
            let mut client = cluster_client(opts)?;
            let report = client.put(key, &bytes).map_err(|e| e.to_string())?;
            if report.fully_replicated() {
                eprintln!(
                    "stored '{key}' ({} bytes) on {}/{} nodes",
                    bytes.len(),
                    report.shards_stored,
                    report.total_shards
                );
            } else {
                eprintln!(
                    "stored '{key}' ({} bytes) UNDER-REPLICATED: {}/{} shards placed ({} failed); run `cuszp cluster-scrub` once the nodes return",
                    bytes.len(),
                    report.shards_stored,
                    report.total_shards,
                    report.failed.len()
                );
            }
            report_cluster(&client);
            Ok(ExitCode::SUCCESS)
        }
        "get" => {
            let key = opts.require("k")?;
            let output = opts.require("o")?;
            let mut client = cluster_client(opts)?;
            let got = client.get(key).map_err(|e| e.to_string())?;
            write_bytes(output, &got.bytes)?;
            eprintln!(
                "fetched '{key}' -> {output} ({} bytes{})",
                got.bytes.len(),
                if got.degraded {
                    ", reconstructed from parity"
                } else {
                    ""
                }
            );
            report_cluster(&client);
            Ok(ExitCode::SUCCESS)
        }
        "get-range" => {
            let key = opts.require("k")?;
            let output = opts.require("o")?;
            let spec = RangeSpec::parse(opts.require("range")?).map_err(|e| e.to_string())?;
            let mut client = cluster_client(opts)?;
            let (out_bytes, dims, degraded): (Vec<u8>, Dims, bool) = if opts.has_flag("double") {
                let (data, dims, degraded) = client
                    .get_range_f64(key, &spec)
                    .map_err(|e| e.to_string())?;
                (
                    data.iter().flat_map(|x| x.to_le_bytes()).collect(),
                    dims,
                    degraded,
                )
            } else {
                let (data, dims, degraded) =
                    client.get_range(key, &spec).map_err(|e| e.to_string())?;
                (
                    data.iter().flat_map(|x| x.to_le_bytes()).collect(),
                    dims,
                    degraded,
                )
            };
            write_bytes(output, &out_bytes)?;
            eprintln!(
                "extracted {spec} of '{key}' -> {output} ({dims:?}, {} bytes{})",
                out_bytes.len(),
                if degraded {
                    ", reconstructed from parity"
                } else {
                    ""
                }
            );
            report_cluster(&client);
            Ok(ExitCode::SUCCESS)
        }
        "ring" => {
            let client = cluster_client(opts)?;
            let ring = client.ring();
            println!(
                "epoch {}: {} data + {} parity shards per stripe, {} member(s)",
                ring.epoch,
                ring.data_shards,
                ring.parity_shards,
                ring.nodes().len()
            );
            for n in ring.nodes() {
                println!("  node {:>4}  {}", n.id, n.addr);
            }
            Ok(ExitCode::SUCCESS)
        }
        "scrub" => {
            let mut client = cluster_client(opts)?;
            let report = client.scrub().map_err(|e| e.to_string())?;
            println!(
                "scrubbed {} key(s): {} shard(s) re-replicated, {} unrepairable, {} unreachable node(s)",
                report.keys, report.repaired, report.unrepairable, report.unreachable_nodes
            );
            report_cluster(&client);
            // Exit 0 when fully healthy, 1 when work remains (lost
            // stripes or members the pass could not see).
            if report.unrepairable > 0 || report.unreachable_nodes > 0 {
                Ok(ExitCode::FAILURE)
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
        other => Err(format!(
            "unknown cluster operation '{other}' (put get get-range ring scrub)"
        )),
    }
}

fn cmd_remote(sub: &str, opts: &Opts) -> Result<ExitCode, String> {
    match sub {
        "compress" => remote_compress(opts).map(|()| ExitCode::SUCCESS),
        "decompress" => remote_decompress(opts).map(|()| ExitCode::SUCCESS),
        "get-range" => remote_get_range(opts).map(|()| ExitCode::SUCCESS),
        "scan" => remote_scan(opts),
        "info" => remote_info(opts).map(|()| ExitCode::SUCCESS),
        "stats" => remote_stats(opts).map(|()| ExitCode::SUCCESS),
        "ping" => {
            let mut client = remote_client(opts)?;
            let t0 = std::time::Instant::now();
            client.ping().map_err(|e| e.to_string())?;
            println!("pong ({:.1} ms)", t0.elapsed().as_secs_f64() * 1e3);
            Ok(ExitCode::SUCCESS)
        }
        // Cheap liveness probe: exit 0 while serving, 1 while draining,
        // so scripts can gate on readiness without parsing output.
        "health" => {
            let mut client = remote_client(opts)?;
            let h = client.health().map_err(|e| e.to_string())?;
            if h.draining {
                println!(
                    "draining: queue {}/{}, {} worker(s), {} active connection(s); retry after {} ms",
                    h.queue_depth, h.queue_capacity, h.workers, h.active_connections, h.retry_after_ms
                );
                Ok(ExitCode::FAILURE)
            } else {
                println!(
                    "healthy: queue {}/{}, {} worker(s), {} active connection(s)",
                    h.queue_depth, h.queue_capacity, h.workers, h.active_connections
                );
                Ok(ExitCode::SUCCESS)
            }
        }
        "shutdown" => {
            let mut client = remote_client(opts)?;
            client.shutdown_server().map_err(|e| e.to_string())?;
            println!("server acknowledged shutdown; draining");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!(
            "unknown remote operation '{other}' (compress decompress get-range scan info stats ping health shutdown)"
        )),
    }
}

/// `remote compress`: ship the raw field; the server compresses through
/// its per-worker engine with the same chunked plan as a local
/// `compress --threads`, so the returned archive bytes are identical.
fn remote_compress(opts: &Opts) -> Result<(), String> {
    let input = opts.require("i")?;
    let output = opts.require("o")?;
    let dims = parse_dims(opts.require("d")?)?;
    let config = parse_config(opts)?;
    let dtype = if opts.has_flag("double") {
        Dtype::F64
    } else {
        Dtype::F32
    };
    let parity = opts
        .get("parity")
        .map(ParityConfig::parse)
        .transpose()
        .map_err(|e| e.to_string())?;
    let chunk_target: u64 = opts
        .get("chunk")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --chunk: {e}"))?
        .unwrap_or(0);
    let data = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    if data.len() != dims.len() * dtype.bytes() {
        return Err(format!(
            "{input} holds {} bytes, dims say {} x {} bytes",
            data.len(),
            dims.len(),
            dtype.bytes()
        ));
    }
    let req = CompressRequest {
        dims,
        dtype,
        error_bound: config.error_bound,
        workflow: config.workflow,
        predictor: config.predictor,
        lossless: config.lossless,
        chunk_target,
        parity,
        data: &data,
    };
    let mut client = remote_client(opts)?;
    let t0 = std::time::Instant::now();
    let result = client.compress(&req);
    report_retries(&client);
    let archive = result.map_err(|e| e.to_string())?;
    write_bytes(output, &archive)?;
    eprintln!(
        "remote: wrote {} bytes to {output} in {:.2}s (ratio {:.2}x)",
        archive.len(),
        t0.elapsed().as_secs_f64(),
        data.len() as f64 / archive.len().max(1) as f64
    );
    Ok(())
}

/// `remote decompress`: ship the archive, write back the raw field. With
/// `--recover` the server decompresses fault-isolated and returns the
/// per-chunk report alongside the (filled) data.
fn remote_decompress(opts: &Opts) -> Result<(), String> {
    let input = opts.require("i")?;
    let output = opts.require("o")?;
    let bytes = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let mode = if opts.has_flag("recover") {
        let fill = FillPolicy::parse(opts.get("fill").unwrap_or("nan"))
            .ok_or_else(|| format!("bad --fill '{}' (nan|zero)", opts.get("fill").unwrap_or("")))?;
        DecompressMode::Recover(fill)
    } else {
        DecompressMode::Strict
    };
    let mut client = remote_client(opts)?;
    let t0 = std::time::Instant::now();
    let result = client.decompress(&bytes, mode);
    report_retries(&client);
    let resp = result.map_err(|e| e.to_string())?;
    write_bytes(output, &resp.data)?;
    if let Some(report) = &resp.report {
        for c in report.chunks.iter().filter(|c| !c.status.is_recovered()) {
            eprintln!(
                "  chunk {}: {} (elements {}..{})",
                c.index, c.status, c.elem_range.start, c.elem_range.end
            );
        }
        eprintln!(
            "remote: recovered {}/{} chunks{}",
            report.chunks.len() - report.n_damaged(),
            report.chunks.len(),
            if report.n_repaired() > 0 {
                format!(" ({} healed from parity)", report.n_repaired())
            } else {
                String::new()
            }
        );
    }
    eprintln!(
        "remote: wrote {} bytes ({}, {:?}) to {output} in {:.2}s",
        resp.data.len(),
        resp.dtype.name(),
        resp.dims,
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// `remote get-range`: ship the archive, write back only the requested
/// sub-volume. Hot chunks are served from the server's slab cache; with
/// `--recover` the server reads around damage and reports the damaged
/// in-range chunks.
fn remote_get_range(opts: &Opts) -> Result<(), String> {
    let input = opts.require("i")?;
    let output = opts.require("o")?;
    let spec = RangeSpec::parse(opts.require("range")?).map_err(|e| e.to_string())?;
    let bytes = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let mode = if opts.has_flag("recover") {
        let fill = FillPolicy::parse(opts.get("fill").unwrap_or("nan"))
            .ok_or_else(|| format!("bad --fill '{}' (nan|zero)", opts.get("fill").unwrap_or("")))?;
        DecompressMode::Recover(fill)
    } else {
        DecompressMode::Strict
    };
    let mut client = remote_client(opts)?;
    let t0 = std::time::Instant::now();
    let result = client.get_range(&bytes, &spec, mode);
    report_retries(&client);
    let resp = result.map_err(|e| e.to_string())?;
    write_bytes(output, &resp.data)?;
    if let Some(report) = &resp.report {
        for c in report.chunks.iter().filter(|c| !c.status.is_recovered()) {
            eprintln!(
                "  chunk {}: {} (elements {}..{})",
                c.index, c.status, c.elem_range.start, c.elem_range.end
            );
        }
        eprintln!(
            "remote: {}/{} in-range chunks ok{}",
            report.chunks.len() - report.n_damaged(),
            report.chunks.len(),
            if report.n_repaired() > 0 {
                format!(" ({} healed from parity)", report.n_repaired())
            } else {
                String::new()
            }
        );
    }
    eprintln!(
        "remote: extracted {spec} -> {output} ({}, {:?}, {} bytes) in {:.2}s",
        resp.dtype.name(),
        resp.dims,
        resp.data.len(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// `remote scan`: fsck over the wire, same report shape and exit codes.
fn remote_scan(opts: &Opts) -> Result<ExitCode, String> {
    let input = opts.require("i")?;
    let bytes = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let mut client = remote_client(opts)?;
    let report = client.scan(&bytes).map_err(|e| e.to_string())?;
    let code = report.exit_code();
    if opts.has_flag("json") {
        println!(
            "{{\"archive\":\"{}\",{},\"exit_code\":{}}}",
            json_escape(input),
            report.to_json_fields(),
            code
        );
        return Ok(ExitCode::from(code));
    }
    println!("archive: {input} ({}, scanned remotely)", report.format);
    if let Some(dims) = report.dims {
        println!("  dims:   {dims:?} ({} elements)", dims.len());
    }
    if let Some(dtype) = report.dtype {
        println!("  dtype:  {}", dtype.name());
    }
    println!("  chunks: {} declared", report.declared_chunks);
    for c in &report.chunks {
        let loc = match &c.byte_range {
            Some(range) => format!("bytes {}..{}", range.start, range.end),
            None => "unlocatable".to_string(),
        };
        println!(
            "    [{}] {}  ({loc}, elements {}..{})",
            c.index, c.status, c.elem_range.start, c.elem_range.end
        );
    }
    match code {
        2 => println!(
            "  data loss: {} of {} chunk(s) unrecoverable",
            report.n_damaged(),
            report.chunks.len()
        ),
        1 => println!("  repairable: damage is covered by parity"),
        _ => println!(
            "  clean: all {} chunk(s) validated and decoded",
            report.chunks.len()
        ),
    }
    Ok(ExitCode::from(code))
}

fn remote_info(opts: &Opts) -> Result<(), String> {
    let input = opts.require("i")?;
    let bytes = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let mut client = remote_client(opts)?;
    let info = client.info(&bytes).map_err(|e| e.to_string())?;
    println!("archive: {input} ({}, described remotely)", info.format);
    println!("  dtype:        {}", info.dtype.name());
    println!(
        "  dims:         {:?} ({} elements)",
        info.dims,
        info.dims.len()
    );
    println!("  error bound:  {:.6e} (absolute)", info.eb);
    println!("  chunks:       {}", info.n_chunks);
    match info.parity {
        Some((k, m)) => println!("  parity:       {m}/{k}"),
        None => println!("  parity:       none"),
    }
    println!("  stored size:  {} bytes", info.stored_bytes);
    Ok(())
}

/// `remote stats`: the server's live metrics — per-op request counts,
/// error counts, bytes in/out, latency percentiles, plus the service
/// gauges (busy rejections, malformed frames, connections).
fn remote_stats(opts: &Opts) -> Result<(), String> {
    let mut client = remote_client(opts)?;
    let snap = client.server_stats().map_err(|e| e.to_string())?;
    println!(
        "{:<11} {:>9} {:>7} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9}",
        "op", "requests", "errors", "bytes_in", "bytes_out", "p50_us", "p90_us", "p99_us", "max_us"
    );
    for o in &snap.ops {
        if o.requests == 0 {
            continue;
        }
        println!(
            "{:<11} {:>9} {:>7} {:>12} {:>12} {:>9.0} {:>9.0} {:>9.0} {:>9}",
            o.op.name(),
            o.requests,
            o.errors,
            o.bytes_in,
            o.bytes_out,
            o.latency.p50_us,
            o.latency.p90_us,
            o.latency.p99_us,
            o.latency.max_us
        );
    }
    println!(
        "total {} requests; {} busy / {} unavailable rejections, {} malformed frames, {} connections ({} active)",
        snap.total_requests(),
        snap.rejected_busy,
        snap.rejected_unavailable,
        snap.malformed_frames,
        snap.connections_total,
        snap.active_connections
    );
    // Guard the rate against a zero-op server: 0/0 must print as a
    // plain "n/a", never NaN.
    let lookups = snap.cache_hits + snap.cache_misses;
    let hit_rate = if lookups > 0 {
        format!(
            "{:.0}% hit rate",
            100.0 * snap.cache_hits as f64 / lookups as f64
        )
    } else {
        "hit rate n/a".to_string()
    };
    println!(
        "slab cache: {} hits / {} lookups ({hit_rate}), {} evictions",
        snap.cache_hits, lookups, snap.cache_evictions
    );
    if snap.redirects + snap.scrub_repairs + snap.corrupt_shards_dropped > 0 {
        println!(
            "cluster: {} redirect(s) answered, {} scrub repair(s) received, {} corrupt shard(s) dropped",
            snap.redirects, snap.scrub_repairs, snap.corrupt_shards_dropped
        );
    }
    Ok(())
}
